"""Packed ``int64`` keys for cross-KB entity pairs.

A pair ``(id1, id2)`` of dense entity ids becomes the single integer
``id1 << 32 | id2``.  Packed keys hash as machine words (no per-lookup
string hashing), sort as integers, and serialize as flat ``array('q')``
columns — the representation every shard partial and every CSR ranked
list in the similarity core uses.

Because ids are assigned in sorted-URI order (see
:class:`~repro.ids.interner.EntityInterner`), ascending packed keys
enumerate pairs in ascending ``(uri1, uri2)`` order — the property that
lets one integer sort replace the string-tuple sorts of the old
dict-backed hot path without changing any scan order.
"""

from __future__ import annotations

#: Bits reserved for each side's id inside a packed pair key.
PAIR_ID_BITS = 32

#: Mask extracting the low (second-KB) id from a packed key.
PAIR_ID_MASK = (1 << PAIR_ID_BITS) - 1

#: Largest id that still packs into a non-negative signed int64 pair key
#: (``array('q')`` storage is signed).
MAX_ENTITY_ID = (1 << (PAIR_ID_BITS - 1)) - 1


def pack_pair(id1: int, id2: int) -> int:
    """The single ``int64`` key of an ``(id1, id2)`` cross-KB pair."""
    return (id1 << PAIR_ID_BITS) | id2


def unpack_pair(key: int) -> tuple[int, int]:
    """The ``(id1, id2)`` pair a packed key encodes."""
    return key >> PAIR_ID_BITS, key & PAIR_ID_MASK
