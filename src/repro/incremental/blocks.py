"""Delta-maintained block placements (the mutable twin of a BlockCollection).

A :class:`DeltaBlockIndex` holds, per KB side, the ``key -> {uris}``
placements a blocking scheme would compute, plus the inverse ``uri ->
{keys}`` view, and keeps both consistent under entity insertions and
removals — re-deriving keys only for the entities a delta touches.  It
tracks which keys changed (with a snapshot of their pre-delta
membership, so the matcher can enumerate exactly the entity pairs whose
evidence moved) and can materialize a
:class:`~repro.blocking.base.BlockCollection` equal to what the batch
builders produce on the same data: two-sided keys only, blocks inserted
in sorted key order, membership sets copied.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..blocking.base import Block, BlockCollection

#: Immutable membership snapshot: (side-1 uris, side-2 uris), sorted.
Members = tuple[tuple[str, ...], tuple[str, ...]]


class DeltaBlockIndex:
    """Two-sided blocking placements maintained under entity deltas."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._placements: tuple[dict[str, set[str]], dict[str, set[str]]] = (
            {},
            {},
        )
        self._entity_keys: tuple[
            dict[str, frozenset[str]], dict[str, frozenset[str]]
        ] = ({}, {})
        # key -> pre-delta membership, captured on first touch since the
        # last collect_dirty(); keys touched but never snapshotted here
        # were created by the delta itself.
        self._old_members: dict[str, Members] = {}
        self._dirty: set[str] = set()

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def _snapshot(self, key: str) -> None:
        if key not in self._old_members:
            self._old_members[key] = self.members(key)
        self._dirty.add(key)

    def add_entity(self, side: int, uri: str, keys: Iterable[str]) -> None:
        """Place ``uri`` (side 1 or 2) into the blocks for ``keys``.

        Raises on a URI already placed on that side: overwriting would
        leave the old keys' placements behind (silent index corruption);
        callers re-keying an entity must ``remove_entity`` first.
        """
        placements = self._placements[side - 1]
        if uri in self._entity_keys[side - 1]:
            raise ValueError(
                f"entity {uri!r} already placed on side {side}; "
                "remove_entity first to re-key it"
            )
        key_set = frozenset(keys)
        self._entity_keys[side - 1][uri] = key_set
        for key in key_set:
            self._snapshot(key)
            placements.setdefault(key, set()).add(uri)

    def remove_entity(self, side: int, uri: str) -> None:
        """Withdraw ``uri`` from every block it was placed in."""
        placements = self._placements[side - 1]
        key_set = self._entity_keys[side - 1].pop(uri, frozenset())
        for key in key_set:
            self._snapshot(key)
            members = placements.get(key)
            if members is None:
                continue
            members.discard(uri)
            if not members:
                del placements[key]

    def load_side(
        self, side: int, entity_keys: Iterable[tuple[str, frozenset[str]]]
    ) -> None:
        """Replace one side wholesale (bootstrap, or a scheme change).

        Does not touch dirty tracking: a wholesale reload means the
        caller is recomputing everything derived from this index anyway.
        """
        placements: dict[str, set[str]] = {}
        keys_of: dict[str, frozenset[str]] = {}
        for uri, keys in entity_keys:
            keys_of[uri] = keys
            for key in keys:
                placements.setdefault(key, set()).add(uri)
        self._placements = (
            (placements, self._placements[1])
            if side == 1
            else (self._placements[0], placements)
        )
        self._entity_keys = (
            (keys_of, self._entity_keys[1])
            if side == 1
            else (self._entity_keys[0], keys_of)
        )

    def collect_dirty(self) -> dict[str, Members]:
        """Keys touched since the last collect, with pre-delta membership.

        Clears the tracker: the caller owns propagating the changes.
        """
        dirty = {key: self._old_members[key] for key in self._dirty}
        self._old_members.clear()
        self._dirty.clear()
        return dirty

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def entity_keys(self, side: int, uri: str) -> frozenset[str]:
        """The block keys of ``uri`` on ``side`` (empty when absent)."""
        return self._entity_keys[side - 1].get(uri, frozenset())

    def members(self, key: str) -> Members:
        """Current sorted membership of ``key`` on both sides."""
        return (
            tuple(sorted(self._placements[0].get(key, ()))),
            tuple(sorted(self._placements[1].get(key, ()))),
        )

    def side_sizes(self, key: str) -> tuple[int, int]:
        return (
            len(self._placements[0].get(key, ())),
            len(self._placements[1].get(key, ())),
        )

    def shared_counts(self) -> dict[str, tuple[int, int]]:
        """Side sizes of every two-sided key (the keys that form blocks)."""
        side1, side2 = self._placements
        return {
            key: (len(side1[key]), len(side2[key]))
            for key in side1.keys() & side2.keys()
        }

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def assemble(self, keep: Mapping[str, object] | set[str] | None = None) -> BlockCollection:
        """A :class:`BlockCollection` equal to the batch builders' output.

        Two-sided keys only (optionally restricted to ``keep``), inserted
        in sorted key order, membership sets copied so downstream holders
        never alias this index's mutable state.
        """
        side1, side2 = self._placements
        keys = side1.keys() & side2.keys()
        if keep is not None:
            keys = keys & set(keep)
        blocks = BlockCollection(self.name)
        for key in sorted(keys):
            blocks.add(Block(key, set(side1[key]), set(side2[key])))
        return blocks

    def __repr__(self) -> str:
        return (
            f"DeltaBlockIndex({self.name!r}, "
            f"{len(self._placements[0])}+{len(self._placements[1])} keys)"
        )
