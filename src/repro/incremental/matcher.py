"""Incremental matching with batch-parity guarantees.

An :class:`IncrementalMatcher` wraps a :class:`~repro.pipeline.session.
MatchSession` and accepts entity deltas — ``add_entities`` /
``remove_entities`` on either KB — updating the blocking placements,
purging threshold, value/neighbor similarity indices and candidate
evidence *in place* instead of recomputing the pipeline from scratch.

**The parity contract.**  After any sequence of deltas, ``match()``
returns exactly what a cold batch ``match()`` on the final KB state
returns — bit-identical matches, scores, block collections and index
floats.  Three properties of the batch engine make this achievable:

- block membership, placements and purging thresholds are discrete
  (set/integer) computations, so maintaining them incrementally is
  exact by construction;
- both similarity indices accumulate floats in an order determined
  entirely by *keys* (blocks sorted by key and sharded by stable hash;
  value pairs likewise), never by position — so the accumulation order
  of one pair can be replayed in isolation with
  :func:`~repro.engine.similarity.shard_merged_sum`;
- the matching heuristics are deterministic functions of the prepared
  artifacts and the KB iteration order, which the mutable
  :class:`~repro.kb.knowledge_base.KnowledgeBase` preserves under
  deltas (removals keep relative order, re-adds append).

When a delta invalidates a *global* decision — the discovered name
attributes, the top relations, or a partition layout (shard counts
follow data size) — the affected stage falls back to a full recompute
through the identical batch code path, so parity is never at risk; the
fallback is counted in :attr:`stage_recomputes` and the common case in
:attr:`delta_updates`.  Delta work (re-keying added entities) dispatches
through the same partitioned execution engine as the batch stages.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Iterable

from ..blocking.name_blocking import names_from_attributes, normalize_name
from ..blocking.purging import PurgingReport, purge_decision_from_sizes
from ..core.similarity import Pair, block_token_weight
from ..core.statistics import top_name_attributes, top_relations
from ..core.neighbors import top_neighbors
from ..engine.executor import create_executor
from ..engine.partitioner import hash_partitions, partition_count
from ..engine.similarity import (
    build_neighbor_index,
    build_value_index,
    packed_pair_hasher,
    shard_merged_sum,
    shard_merged_sum_packed,
)
from ..ids import PAIR_ID_BITS
from ..kb.graph import inverse
from ..kb.tokenizer import Tokenizer
from ..obs.runtime import Telemetry, activate, current as current_telemetry
from ..pipeline.context import PipelineContext
from ..pipeline.delta import DeltaContext
from .blocks import DeltaBlockIndex

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.pipeline import MatchResult
    from ..kb.entity import EntityDescription
    from ..pipeline.session import MatchSession

#: Stages the incremental matcher maintains; the session's graph must be
#: exactly these (name_blocking optional — token-only compositions work).
REQUIRED_STAGES = (
    "token_blocking",
    "value_index",
    "neighbor_index",
    "candidates",
    "matching",
)


def _token_key_rows(
    entities: list["EntityDescription"], tokenizer: Tokenizer
) -> list[tuple[str, frozenset[str]]]:
    """(uri, token keys) of one entity partition (engine worker)."""
    return [(e.uri, frozenset(tokenizer.token_set(e))) for e in entities]


def _name_key_rows(
    entities: list["EntityDescription"], extractor
) -> list[tuple[str, frozenset[str]]]:
    """(uri, normalized name keys) of one entity partition (engine worker)."""
    rows = []
    for entity in entities:
        keys = frozenset(
            key
            for key in (normalize_name(raw) for raw in extractor(entity))
            if key
        )
        rows.append((entity.uri, keys))
    return rows


def _merge_rows(rows: list, partial_rows: list) -> list:
    rows.extend(partial_rows)
    return rows


class IncrementalMatcher:
    """Delta-updatable matching over a completed :class:`MatchSession`."""

    def __init__(
        self,
        session: "MatchSession",
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._init_state(session)
        self.telemetry = telemetry
        with activate(self.telemetry):
            self._bootstrap()

    def _init_state(self, session: "MatchSession") -> None:
        """Validate the session's graph and set up every maintained field
        (shared by the cold :meth:`__init__` and the warm
        :meth:`from_snapshot` paths; neither artifact bootstrap nor
        restore happens here)."""
        from ..pipeline.stage import declares_delta_hook

        names = session.graph.names()
        custom = set(names) - set(REQUIRED_STAGES) - {"name_blocking"}
        # Custom stages overriding Stage.apply_delta opt in to the
        # rerun-on-refresh fallback; the rest keep the strict check.
        hooked = {
            name
            for name in custom
            if declares_delta_hook(session.graph.stage(name))
        }
        unsupported = custom - hooked
        missing = [name for name in REQUIRED_STAGES if name not in names]
        if unsupported or missing:
            problems = []
            if unsupported:
                problems.append(
                    "it cannot maintain deltas for custom stage(s) "
                    + ", ".join(repr(name) for name in sorted(unsupported))
                )
            if missing:
                problems.append(
                    "the graph lacks required stage(s) "
                    + ", ".join(repr(name) for name in sorted(missing))
                )
            raise ValueError(
                "IncrementalMatcher supports the default stage composition "
                "only: " + "; ".join(problems) + ". A custom stage may "
                "declare a delta hook (the escape hatch: override "
                "Stage.apply_delta) to opt in to rerun-on-refresh; "
                "otherwise run custom compositions through "
                "MatchSession.match() instead."
            )
        #: Hook-declaring custom stages, in graph order — re-run by
        #: every :meth:`match` alongside candidates/matching.
        self._delta_hook_stages = tuple(
            name for name in names if name in hooked
        )
        self.session = session
        self.config = session.config
        self.graph = session.graph
        self.kbs = (session.kb1, session.kb2)
        self._has_names = "name_blocking" in names
        #: Full stage-equivalent recomputations (bootstrap counts as one
        #: cold run); the parity harness asserts delta refreshes stay
        #: strictly below a cold run's stage count.
        self.stage_recomputes: dict[str, int] = {}
        #: In-place artifact patches, by stage name.
        self.delta_updates: dict[str, int] = {}
        #: Applied deltas, oldest first: (op, kb side, uris).
        self.delta_log: list[tuple[str, int, tuple[str, ...]]] = []
        self.last_context: PipelineContext | None = None

        self._tokenizer = Tokenizer(
            min_length=self.config.min_token_length,
            include_uri_localnames=self.config.include_uri_localnames,
        )
        self._tokens = DeltaBlockIndex("BT")
        self._names = DeltaBlockIndex("BN")
        self._name_attrs: list[list[str]] = [[], []]
        self._top_rels: list[list[str]] = [[], []]
        self._top_nbrs: list[dict[str, set[str]]] = [{}, {}]
        self._rev: list[dict[str, set[str]]] = [{}, {}]
        self._refs: list[dict[str, set[str]]] = [{}, {}]
        self._tn_dirty: list[set[str]] = [set(), set()]
        self._purged_keys: set[str] = set()
        self._pending = False
        self._stage_seconds: dict[str, tuple[float, bool]] = {}
        #: Optional pinned telemetry (see :class:`MatchSession`): when
        #: set, every bootstrap/refresh/match runs under it.
        self.telemetry: "Telemetry | None" = None
        #: (interners + sizes, hasher) cache — rebuilding the packed
        #: pair hasher costs O(value-index URIs), far too much per delta.
        self._hasher_cache: tuple | None = None

    # ------------------------------------------------------------------
    # Warm restart (snapshot store)
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        path,
        *,
        engine: str | None = None,
        workers: int | None = None,
        telemetry: "Telemetry | None" = None,
        mode: str = "copy",
    ) -> "IncrementalMatcher":
        """A matcher warm-restarted from a ``repro-snapshot/1`` directory.

        Loads the saved placements, indices and top-neighbor sets
        instead of running :meth:`_bootstrap`'s cold pass, so no entity
        is re-tokenized and no index is re-accumulated.  Deltas applied
        afterwards behave exactly as they would on the matcher that was
        saved — bit-identical to a cold batch run on the final KB state.
        ``engine``/``workers`` override the stored execution-engine
        fields; ``mode="mmap"`` maps column files instead of copying
        them (see :meth:`repro.store.Snapshot.load`).
        """
        from ..store import load_state

        state = load_state(path, engine=engine, workers=workers, mode=mode)
        matcher = cls.__new__(cls)
        matcher._init_state(state.session)
        matcher.telemetry = telemetry
        matcher._restore(state)
        return matcher

    def save(self, path):
        """Snapshot the matcher's current (post-delta) state.

        Pending deltas are refreshed (via :meth:`match`) first, so the
        snapshot always describes a consistent, decision-complete state;
        a later :meth:`from_snapshot` + batch run on the same KBs is
        bit-identical.  Returns the snapshot directory path.
        """
        from ..pipeline.digest import context_digests
        from ..store import validate_snapshotable_graph, write_session_snapshot

        validate_snapshotable_graph(self.graph)
        if self.last_context is None or self._pending:
            self.match()
        ctx = self.last_context
        kb1, kb2 = self.kbs
        token_rows = tuple(
            [(uri, self._tokens.entity_keys(side, uri)) for uri in kb.uris()]
            for side, kb in ((1, kb1), (2, kb2))
        )
        name_rows = None
        if self._has_names:
            name_rows = tuple(
                [(uri, self._names.entity_keys(side, uri)) for uri in kb.uris()]
                for side, kb in ((1, kb1), (2, kb2))
            )
        artifacts = {
            key: ctx.get(key) for key in ctx.keys() if key not in ("kb1", "kb2")
        }
        return write_session_snapshot(
            path,
            kb1=kb1,
            kb2=kb2,
            config=self.config,
            graph_names=list(self.graph.names()),
            artifacts=artifacts,
            token_rows=token_rows,
            name_rows=name_rows,
            top_neighbors=(self._top_nbrs[0], self._top_nbrs[1]),
            digests=context_digests(ctx),
        )

    def _restore(self, state) -> None:
        """Adopt a :class:`~repro.store.RestoredState` in place of the
        cold bootstrap (fields mirror :meth:`_bootstrap`'s, loaded
        instead of computed; recompute counters stay at zero — nothing
        was recomputed)."""
        self._tokens = state.tokens
        if self._has_names:
            self._names = state.names
            self._name_blocks = state.artifacts["name_blocks"]
            self._name_attrs = [
                list(state.artifacts["name_attributes1"]),
                list(state.artifacts["name_attributes2"]),
            ]
        self._top_rels = [
            list(state.artifacts["top_relations1"]),
            list(state.artifacts["top_relations2"]),
        ]
        self._top_nbrs = [
            dict(state.top_neighbors[0]),
            dict(state.top_neighbors[1]),
        ]
        for side in (1, 2):
            self._rebuild_reverse(side)
            refs = self._refs[side - 1]
            for entity in self.kbs[side - 1]:
                for _, target in entity.relation_pairs():
                    refs.setdefault(target, set()).add(entity.uri)
        self._purged_keys = set(state.kept_keys)
        self._purging_report = state.artifacts["purging_report"]
        self._token_blocks = state.artifacts["token_blocks"]
        self._value_index = state.artifacts["value_index"]
        self._neighbor_index = state.artifacts["neighbor_index"]
        self._value_shards = partition_count(len(self._purged_keys))
        self._neighbor_shards = partition_count(len(self._value_index))
        base = PipelineContext(self.kbs[0], self.kbs[1], self.config)
        self._publish_artifacts(base, producer="snapshot")
        self._base_ctx = base

    # ------------------------------------------------------------------
    # Bootstrap (one cold pass over the current KB state)
    # ------------------------------------------------------------------
    def _engine(self):
        return create_executor(self.config.engine, self.config.workers)

    def _keys_via_engine(self, entities, worker, engine):
        """Re-key ``entities`` through the partitioned engine."""
        shards = hash_partitions(
            list(entities),
            partition_count(len(entities)),
            key=lambda entity: entity.uri,
        )
        return engine.run(worker, shards, _merge_rows, [])

    def _count(self, counters: dict[str, int], stage: str) -> None:
        counters[stage] = counters.get(stage, 0) + 1
        kind = (
            "stage_recomputes"
            if counters is self.stage_recomputes
            else "delta_updates"
        )
        current_telemetry().metrics.counter(f"incremental.{kind}").inc()

    def _bootstrap(self) -> None:
        config = self.config
        with current_telemetry().tracer.span(
            "bootstrap", category="run", args={"kind": "incremental"}
        ), self._engine() as engine:
            token_worker = partial(_token_key_rows, tokenizer=self._tokenizer)
            for side in (1, 2):
                kb = self.kbs[side - 1]
                self._tokens.load_side(
                    side, self._keys_via_engine(kb, token_worker, engine)
                )
                if self._has_names:
                    attrs = top_name_attributes(kb, config.name_attributes)
                    self._name_attrs[side - 1] = attrs
                    self._names.load_side(
                        side,
                        self._keys_via_engine(
                            kb,
                            partial(
                                _name_key_rows,
                                extractor=names_from_attributes(attrs),
                            ),
                            engine,
                        ),
                    )
                self._top_rels[side - 1] = top_relations(
                    kb, config.top_n_relations, config.include_incoming_edges
                )
                self._top_nbrs[side - 1] = top_neighbors(
                    kb,
                    self._top_rels[side - 1],
                    config.include_incoming_edges,
                )
                self._rebuild_reverse(side)
                refs = self._refs[side - 1]
                for entity in kb:
                    for _, target in entity.relation_pairs():
                        refs.setdefault(target, set()).add(entity.uri)
            self._tokens.collect_dirty()  # load_side touches nothing, but be safe
            self._names.collect_dirty()

            self._purged_keys, self._purging_report = self._purge_decision()
            self._token_blocks = self._tokens.assemble(keep=self._purged_keys)
            self._value_index = build_value_index(self._token_blocks, engine)
            self._value_shards = partition_count(len(self._purged_keys))
            self._neighbor_index = build_neighbor_index(
                self._value_index,
                self._top_nbrs[0],
                self._top_nbrs[1],
                engine,
            )
            self._neighbor_shards = partition_count(len(self._value_index))
            if self._has_names:
                self._name_blocks = self._names.assemble()
                self._count(self.stage_recomputes, "name_blocking")
            for stage in ("token_blocking", "value_index", "neighbor_index"):
                self._count(self.stage_recomputes, stage)

        base = PipelineContext(self.kbs[0], self.kbs[1], config)
        self._publish_artifacts(base, producer="bootstrap")
        self._base_ctx = base

    def _rebuild_reverse(self, side: int) -> None:
        reverse: dict[str, set[str]] = {}
        for uri, neighbor_set in self._top_nbrs[side - 1].items():
            for neighbor in neighbor_set:
                reverse.setdefault(neighbor, set()).add(uri)
        self._rev[side - 1] = reverse

    def _publish_artifacts(self, ctx: PipelineContext, producer: str) -> None:
        if self._has_names:
            ctx.put("name_blocks", self._name_blocks, producer=producer)
            ctx.put("name_attributes1", list(self._name_attrs[0]), producer=producer)
            ctx.put("name_attributes2", list(self._name_attrs[1]), producer=producer)
        ctx.put("token_blocks", self._token_blocks, producer=producer)
        ctx.put("purging_report", self._purging_report, producer=producer)
        ctx.put("value_index", self._value_index, producer=producer)
        ctx.put("neighbor_index", self._neighbor_index, producer=producer)
        ctx.put("top_relations1", list(self._top_rels[0]), producer=producer)
        ctx.put("top_relations2", list(self._top_rels[1]), producer=producer)

    # ------------------------------------------------------------------
    # Copy-on-write epochs (serving layer)
    # ------------------------------------------------------------------
    def detach_shared_artifacts(self) -> None:
        """Stop mutating the currently published similarity indices.

        Delta refreshes patch the value/neighbor indices **in place**
        (:meth:`~repro.core.similarity.PackedSimilarityIndex.apply_pair_updates`).
        A reader holding a reference across that refresh — the resolution
        daemon's published :class:`~repro.serve.state.ServingState` —
        would observe a half-applied patch.  Calling this before a delta
        epoch swaps both indices for
        :meth:`~repro.core.similarity.PackedSimilarityIndex.detached_copy`
        clones: the immutable CSR columns stay shared, while the
        patch-bearing maps (packed sums, patched rows, interners) are
        copied, so every previously handed-out index is frozen forever
        and subsequent refreshes mutate only the private clones.  The
        pair-hasher cache is dropped with the interners it was keyed on.
        Cheap relative to a refresh: O(patched rows + interned URIs),
        no CSR rebuild.
        """
        self._value_index = self._value_index.detached_copy()
        self._neighbor_index = self._neighbor_index.detached_copy()
        self._hasher_cache = None

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------
    def _side_of(self, kb_id) -> int:
        if kb_id in (1, 2):
            return kb_id
        if isinstance(kb_id, str):
            lowered = kb_id.lower()
            if lowered in ("1", "kb1"):
                return 1
            if lowered in ("2", "kb2"):
                return 2
            names = [kb.name for kb in self.kbs]
            if kb_id in names and names.count(kb_id) == 1:
                return names.index(kb_id) + 1
        raise ValueError(
            f"unknown KB {kb_id!r}; use 1/2, 'kb1'/'kb2' or a unique KB name"
        )

    def add_entities(
        self, kb_id, entities: Iterable["EntityDescription"]
    ) -> int:
        """Insert descriptions into one KB; evidence refreshes lazily.

        URIs must be new to that KB.  Returns the number added.
        """
        side = self._side_of(kb_id)
        kb = self.kbs[side - 1]
        batch = list(entities)
        uris = [entity.uri for entity in batch]
        seen: set[str] = set()
        duplicates = []
        for uri in uris:
            if uri in kb or uri in seen:
                duplicates.append(uri)
            seen.add(uri)
        if duplicates:
            raise ValueError(
                f"duplicate entity URIs for KB{side}: {sorted(set(duplicates))}"
            )
        if not batch:
            return 0
        with self._engine() as engine:
            token_rows = self._keys_via_engine(
                batch, partial(_token_key_rows, tokenizer=self._tokenizer), engine
            )
            name_rows = (
                self._keys_via_engine(
                    batch,
                    partial(
                        _name_key_rows,
                        extractor=names_from_attributes(
                            self._name_attrs[side - 1]
                        ),
                    ),
                    engine,
                )
                if self._has_names
                else []
            )
        token_keys = dict(token_rows)
        name_keys = dict(name_rows)
        refs = self._refs[side - 1]
        dirty = self._tn_dirty[side - 1]
        for entity in batch:
            kb.add(entity)
        for entity in batch:
            uri = entity.uri
            self._tokens.add_entity(side, uri, token_keys[uri])
            if self._has_names:
                self._names.add_entity(side, uri, name_keys[uri])
            for _, target in entity.relation_pairs():
                refs.setdefault(target, set()).add(uri)
                if target in kb:
                    dirty.add(target)
            dirty.add(uri)
            dirty.update(s for s in refs.get(uri, ()) if s in kb)
        self.delta_log.append(("add", side, tuple(uris)))
        self._pending = True
        return len(batch)

    def remove_entities(self, kb_id, uris: Iterable[str]) -> int:
        """Withdraw descriptions from one KB; evidence refreshes lazily.

        Every URI must exist in that KB.  Returns the number removed.
        """
        side = self._side_of(kb_id)
        kb = self.kbs[side - 1]
        batch = list(uris)
        seen: set[str] = set()
        rejected = []
        for uri in batch:
            if uri not in kb or uri in seen:  # absent, or repeated in-batch
                rejected.append(uri)
            seen.add(uri)
        if rejected:
            # Validate the whole batch before mutating anything: a
            # mid-loop failure would leave KB and indices half-updated
            # with the delta unlogged — silent parity corruption.
            raise KeyError(
                f"missing or duplicated for KB{side}: {sorted(set(rejected))}"
            )
        refs = self._refs[side - 1]
        dirty = self._tn_dirty[side - 1]
        for uri in batch:
            entity = kb.remove(uri)
            self._tokens.remove_entity(side, uri)
            if self._has_names:
                self._names.remove_entity(side, uri)
            for _, target in entity.relation_pairs():
                holders = refs.get(target)
                if holders is not None:
                    holders.discard(uri)
                    if not holders:
                        del refs[target]
                if target in kb:
                    dirty.add(target)
            dirty.add(uri)
            dirty.update(s for s in refs.get(uri, ()) if s in kb)
        self.delta_log.append(("remove", side, tuple(batch)))
        self._pending = True
        return len(batch)

    # ------------------------------------------------------------------
    # Refresh: propagate pending deltas through the evidence
    # ------------------------------------------------------------------
    def _pair_hasher(self):
        """The packed pair hasher of the current value index, cached.

        A hasher's per-id CRC tables are only valid while the value
        interners keep their ids, so the cache keys on the interner
        *objects* (a rebuilt index starts over with fresh interners)
        and their sizes (ids are append-only within one interner).
        """
        value1, value2 = self._value_index.interners()
        cached = self._hasher_cache
        if (
            cached is None
            or cached[0] is not value1
            or cached[1] is not value2
            or cached[2] != (len(value1), len(value2))
        ):
            cached = (
                value1,
                value2,
                (len(value1), len(value2)),
                packed_pair_hasher(value1, value2),
            )
            self._hasher_cache = cached
        return cached[3]

    def _purge_decision(self) -> tuple[set[str], PurgingReport | None]:
        """The surviving token keys (and report) for the current state.

        Exactly :func:`~repro.blocking.purging.purge_blocks` over the
        assembled collection, computed from maintained side sizes.
        """
        config = self.config
        shared = self._tokens.shared_counts()
        if not config.purge_token_blocks:
            return set(shared), None
        return purge_decision_from_sizes(
            shared,
            gain_factor=config.purging_gain_factor,
            max_cardinality=config.purging_max_cardinality,
        )

    def _timed(self, stage: str, seconds: float, ran: bool) -> None:
        """Accumulate one refresh section's span-derived wall seconds."""
        previous = self._stage_seconds.get(stage, (0.0, False))
        self._stage_seconds[stage] = (
            previous[0] + seconds,
            previous[1] or ran,
        )

    def refresh(self, engine=None) -> bool:
        """Propagate pending deltas through every maintained artifact.

        Returns True when anything had to be refreshed.  Called
        automatically by :meth:`match`, which shares one executor across
        the refresh and the decision stages; standalone calls create
        (and close) their own.
        """
        if not self._pending:
            return False
        self._stage_seconds = {}
        if engine is None:
            with self._engine() as owned:
                return self.refresh(owned)
        with activate(self.telemetry):
            self._refresh_names(engine)
            value_changes = self._refresh_values(engine)
            self._refresh_neighbors(engine, value_changes)
        self._pending = False
        self._tn_dirty = [set(), set()]
        return True

    def _refresh_names(self, engine) -> None:
        if not self._has_names:
            return
        rebuilt = False
        with current_telemetry().tracer.span(
            "name_blocking", category="stage", args={"delta": True}
        ) as span:
            for side in (1, 2):
                kb = self.kbs[side - 1]
                attrs = top_name_attributes(kb, self.config.name_attributes)
                if attrs == self._name_attrs[side - 1]:
                    continue
                # The discovered name attributes moved: every name key of
                # this side is suspect, so re-extract the whole side.
                self._name_attrs[side - 1] = attrs
                self._names.load_side(
                    side,
                    self._keys_via_engine(
                        kb,
                        partial(
                            _name_key_rows,
                            extractor=names_from_attributes(attrs),
                        ),
                        engine,
                    ),
                )
                rebuilt = True
            self._names.collect_dirty()
            self._name_blocks = self._names.assemble()
        self._count(
            self.stage_recomputes if rebuilt else self.delta_updates,
            "name_blocking",
        )
        self._timed("name_blocking", span.seconds, rebuilt)

    def _refresh_values(self, engine) -> dict[Pair, float | None]:
        """Update purging + the value index; returns the effective
        pair-level changes (new value, or None for a deleted pair)."""
        tracer = current_telemetry().tracer
        with tracer.span(
            "token_blocking", category="stage", args={"delta": True}
        ) as span:
            previous_purged = self._purged_keys
            dirty = self._tokens.collect_dirty()
            self._purged_keys, self._purging_report = self._purge_decision()
            self._token_blocks = self._tokens.assemble(keep=self._purged_keys)
        self._count(self.delta_updates, "token_blocking")
        self._timed("token_blocking", span.seconds, False)

        with tracer.span(
            "value_index", category="stage", args={"delta": True}
        ) as span:
            changes, recomputed = self._refresh_value_index(
                engine, previous_purged, dirty
            )
        self._count(
            self.stage_recomputes if recomputed else self.delta_updates,
            "value_index",
        )
        self._timed("value_index", span.seconds, recomputed)
        return changes

    def _refresh_value_index(
        self, engine, previous_purged: set[str], dirty: dict
    ) -> tuple[dict[Pair, float | None], bool]:
        """The value-index section of :meth:`_refresh_values`; returns
        (pair-level changes, whether a full recompute was required)."""
        n_shards = partition_count(len(self._purged_keys))
        if n_shards != self._value_shards:
            # The shard layout moved with the block count: per-pair
            # accumulation grouping changed globally, so only a full
            # rebuild reproduces the batch floats.
            retained = dict(self._value_index.pairs())
            self._value_index = build_value_index(self._token_blocks, engine)
            self._value_shards = n_shards
            new_sims = self._value_index.pairs()
            changes: dict[Pair, float | None] = {
                pair: new_sims.get(pair)
                for pair in retained.keys() | new_sims.keys()
                if retained.get(pair) != new_sims.get(pair)
            }
            return changes, True

        # Delta path: look affected pairs up in the packed map directly
        # (missing interner id == missing pair == None) — decoding the
        # whole map via pairs() would cost O(total pairs) per delta.
        value1, value2 = self._value_index.interners()
        packed_sims = self._value_index.packed_items()

        def current_sim(uri1: str, uri2: str) -> float | None:
            id1 = value1.get(uri1)
            if id1 is None:
                return None
            id2 = value2.get(uri2)
            if id2 is None:
                return None
            return packed_sims.get((id1 << PAIR_ID_BITS) | id2)

        affected: set[Pair] = set()
        for key, (old1, old2) in dirty.items():
            if key in previous_purged:
                affected.update(
                    (uri1, uri2) for uri1 in old1 for uri2 in old2
                )
            if key in self._purged_keys:
                new1, new2 = self._tokens.members(key)
                affected.update(
                    (uri1, uri2) for uri1 in new1 for uri2 in new2
                )
        for key in (previous_purged ^ self._purged_keys) - dirty.keys():
            members1, members2 = self._tokens.members(key)
            affected.update(
                (uri1, uri2) for uri1 in members1 for uri2 in members2
            )

        updates: dict[Pair, float | None] = {}
        for uri1, uri2 in affected:
            common = (
                self._tokens.entity_keys(1, uri1)
                & self._tokens.entity_keys(2, uri2)
                & self._purged_keys
            )
            if common:
                contributions = [
                    (key, block_token_weight(*self._tokens.side_sizes(key)))
                    for key in sorted(common)
                ]
                updates[(uri1, uri2)] = shard_merged_sum(
                    contributions, n_shards
                )
            else:
                updates[(uri1, uri2)] = None
        changes = {
            pair: value
            for pair, value in updates.items()
            if current_sim(*pair) != value
        }
        self._value_index.apply_pair_updates(changes)
        return changes, False

    def _refresh_neighbors(
        self, engine, value_changes: dict[Pair, float | None]
    ) -> None:
        with current_telemetry().tracer.span(
            "neighbor_index", category="stage", args={"delta": True}
        ) as span:
            recomputed = self._refresh_neighbor_index(engine, value_changes)
        self._count(
            self.stage_recomputes if recomputed else self.delta_updates,
            "neighbor_index",
        )
        self._timed("neighbor_index", span.seconds, recomputed)

    def _refresh_neighbor_index(
        self, engine, value_changes: dict[Pair, float | None]
    ) -> bool:
        """The neighbor-index section of :meth:`_refresh_neighbors`;
        returns whether a full recompute was required."""
        config = self.config
        rebuild = False
        changed_entities: list[set[str]] = [set(), set()]
        for side in (1, 2):
            kb = self.kbs[side - 1]
            rels = top_relations(
                kb, config.top_n_relations, config.include_incoming_edges
            )
            if rels != self._top_rels[side - 1]:
                # The relation importance ranking moved: every top-
                # neighbor set of this side is suspect.
                self._top_rels[side - 1] = rels
                self._top_nbrs[side - 1] = top_neighbors(
                    kb, rels, config.include_incoming_edges
                )
                self._rebuild_reverse(side)
                rebuild = True
                continue
            neighbors = self._top_nbrs[side - 1]
            reverse = self._rev[side - 1]
            for uri in sorted(self._tn_dirty[side - 1]):
                old = neighbors.get(uri, set())
                new = self._entity_top_neighbors(side, uri)
                if new == old:
                    continue
                changed_entities[side - 1].add(uri)
                for gone in old - new:
                    holders = reverse.get(gone)
                    if holders is not None:
                        holders.discard(uri)
                        if not holders:
                            del reverse[gone]
                for came in new - old:
                    reverse.setdefault(came, set()).add(uri)
                if new:
                    neighbors[uri] = new
                else:
                    neighbors.pop(uri, None)

        n_shards = partition_count(len(self._value_index))
        if rebuild or n_shards != self._neighbor_shards:
            self._neighbor_index = build_neighbor_index(
                self._value_index,
                self._top_nbrs[0],
                self._top_nbrs[1],
                engine,
            )
            self._neighbor_shards = n_shards
            return True

        affected: set[Pair] = set()
        rev1, rev2 = self._rev
        for neighbor1, neighbor2 in value_changes:
            parents1 = rev1.get(neighbor1)
            if not parents1:
                continue
            parents2 = rev2.get(neighbor2)
            if not parents2:
                continue
            affected.update(
                (entity1, entity2)
                for entity1 in parents1
                for entity2 in parents2
            )
        for entity1 in changed_entities[0]:
            partners = {
                uri2
                for uri2, _ in self._neighbor_index.candidates_of_entity1(
                    entity1
                )
            }
            for neighbor1 in self._top_nbrs[0].get(entity1, ()):
                for neighbor2, _ in self._value_index.candidates_of_entity1(
                    neighbor1
                ):
                    partners.update(rev2.get(neighbor2, ()))
            affected.update((entity1, uri2) for uri2 in partners)
        for entity2 in changed_entities[1]:
            partners = {
                uri1
                for uri1, _ in self._neighbor_index.candidates_of_entity2(
                    entity2
                )
            }
            for neighbor2 in self._top_nbrs[1].get(entity2, ()):
                for neighbor1, _ in self._value_index.candidates_of_entity2(
                    neighbor2
                ):
                    partners.update(rev1.get(neighbor1, ()))
            affected.update((uri1, entity2) for uri1 in partners)

        # Replay affected pairs over packed keys: the hasher reproduces
        # the string-stable value_pair_key shard assignment, so the
        # replayed floats equal the string-keyed replay's bit-for-bit —
        # without decoding the value map or building key strings.
        value_sims = self._value_index.packed_items()
        value1, value2 = self._value_index.interners()
        hasher = self._pair_hasher() if affected else None
        updates: dict[Pair, float | None] = {}
        for entity1, entity2 in affected:
            contributions = []
            for neighbor1 in sorted(self._top_nbrs[0].get(entity1, ())):
                neighbor_id1 = value1.get(neighbor1)
                if neighbor_id1 is None:  # never co-occurs: no value pair
                    continue
                base = neighbor_id1 << PAIR_ID_BITS
                for neighbor2 in sorted(self._top_nbrs[1].get(entity2, ())):
                    neighbor_id2 = value2.get(neighbor2)
                    if neighbor_id2 is None:
                        continue
                    sim = value_sims.get(base | neighbor_id2)
                    if sim is not None:
                        contributions.append((base | neighbor_id2, sim))
            updates[(entity1, entity2)] = (
                shard_merged_sum_packed(contributions, n_shards, hasher)
                if contributions
                else None
            )
        self._neighbor_index.apply_pair_updates(updates)
        return False

    def _entity_top_neighbors(self, side: int, uri: str) -> set[str]:
        """The top-neighbor set of one entity under the current rankings.

        Mirrors :func:`~repro.core.neighbors.top_neighbors` for a single
        entity, using the maintained reverse-reference index for the
        incoming direction.
        """
        kb = self.kbs[side - 1]
        entity = kb.get(uri)
        if entity is None:
            return set()
        wanted = set(self._top_rels[side - 1])
        found: set[str] = set()
        for relation, target in entity.relation_pairs():
            if relation in wanted and target in kb:
                found.add(target)
        if self.config.include_incoming_edges:
            for subject in self._refs[side - 1].get(uri, ()):
                if subject not in kb:
                    continue
                for relation, target in kb[subject].relation_pairs():
                    if target == uri and inverse(relation) in wanted:
                        found.add(subject)
                        break
        return found

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self) -> "MatchResult":
        """Matches for the current KB state (bit-identical to a cold run).

        Refreshes pending deltas, overlays the patched artifacts on the
        bootstrap context through a :class:`DeltaContext`, and re-runs
        only the decision stages (candidates + matching) — the only
        default stages without a sound in-place patch, since H1-H3 are
        order-dependent greedy passes.  Custom stages that declared the
        delta hook (:meth:`~repro.pipeline.stage.Stage.apply_delta`)
        are re-run too, in graph order — the fallback contract that
        keeps their artifacts consistent without a patch strategy.
        """
        from ..core.pipeline import MatchResult

        rerun = set(self._delta_hook_stages) | {"candidates", "matching"}
        rerun_order = [
            name for name in self.graph.names() if name in rerun
        ]
        with activate(self.telemetry) as telemetry:
            tracer = telemetry.tracer
            with tracer.span(
                "run", category="run", args={"kind": "incremental"}
            ) as run_span, self._engine() as engine:
                self.refresh(engine)
                refresh_sections = self._stage_seconds
                self._stage_seconds = {}  # consumed: a no-delta match reports nothing
                ctx = DeltaContext(self._base_ctx)
                self._publish_artifacts(ctx, producer="delta")
                for stage, (seconds, ran) in refresh_sections.items():
                    ctx.record_stage(
                        stage, self.graph.stage(stage).timing_group, seconds, ran=ran
                    )
                for name in rerun_order:
                    stage = self.graph.stage(name)
                    with tracer.span(
                        name,
                        category="stage",
                        args={"group": stage.timing_group},
                    ) as span:
                        stage.run(ctx, engine)
                    ctx.record_stage(
                        name,
                        stage.timing_group,
                        span.seconds,
                        ran=True,
                    )
                    self._count(self.stage_recomputes, name)
        self.last_context = ctx
        return MatchResult.from_context(ctx, run_span.seconds)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, dict[str, int]]:
        """Copies of the recompute/delta-update counters."""
        return {
            "recomputed": dict(self.stage_recomputes),
            "delta_updated": dict(self.delta_updates),
        }

    def __repr__(self) -> str:
        return (
            f"IncrementalMatcher({self.kbs[0].name!r}, {self.kbs[1].name!r}, "
            f"deltas={len(self.delta_log)})"
        )
