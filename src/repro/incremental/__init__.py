"""Incremental matching: entity deltas with batch-parity guarantees.

The entry point is :class:`IncrementalMatcher`, which wraps a
:class:`~repro.pipeline.session.MatchSession` and keeps its blocking,
similarity and candidate evidence consistent under ``add_entities`` /
``remove_entities`` — with ``match()`` output bit-identical to a cold
batch run on the final KB state (see :mod:`.matcher` for why that is
achievable and how global-decision changes fall back safely).
"""

from .blocks import DeltaBlockIndex
from .matcher import REQUIRED_STAGES, IncrementalMatcher

__all__ = ["DeltaBlockIndex", "IncrementalMatcher", "REQUIRED_STAGES"]
