"""Experiment runner: one call per (dataset, method) cell of Table III.

Wraps every matcher behind a uniform ``run_*`` function that consumes a
:class:`~repro.datasets.generator.GeneratedDataset` and returns a
:class:`MethodRow` with percent-scaled precision/recall/F1.  The benches
compose these into the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..blocking.name_blocking import names_from_attributes
from ..blocking.purging import purge_blocks
from ..blocking.token_blocking import token_blocking
from ..core.config import MinoanERConfig
from ..core.pipeline import MinoanER
from ..core.statistics import top_name_attributes
from ..datasets.generator import GeneratedDataset
from ..kb.tokenizer import Tokenizer
from ..matching.bsl import BslBaseline
from ..matching.linda import LindaMatcher
from ..matching.paris import ParisMatcher
from ..matching.rimom import RimomMatcher
from ..matching.sigma import SigmaMatcher
from ..pipeline.session import MatchSession
from .metrics import MatchingQuality, evaluate_matching


@dataclass(frozen=True)
class MethodRow:
    """One method's scores on one dataset (percent-scaled)."""

    dataset: str
    method: str
    quality: MatchingQuality
    detail: str = ""

    @property
    def precision(self) -> float:
        return 100.0 * self.quality.precision

    @property
    def recall(self) -> float:
        return 100.0 * self.quality.recall

    @property
    def f1(self) -> float:
        return 100.0 * self.quality.f1

    def as_record(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "method": self.method,
            "precision": round(self.precision, 2),
            "recall": round(self.recall, 2),
            "f1": round(self.f1, 2),
            "detail": self.detail,
        }


def _name_extractors(dataset: GeneratedDataset, k: int = 2):
    """Statistics-discovered name extractors for both KBs.

    The iterative baselines are seeded from entity names; discovering the
    name attributes the same way MinoanER does keeps the comparison fair.
    """
    names1 = top_name_attributes(dataset.kb1, k)
    names2 = top_name_attributes(dataset.kb2, k)
    return names_from_attributes(names1), names_from_attributes(names2)


def run_minoaner(
    dataset: GeneratedDataset,
    config: MinoanERConfig | None = None,
    session: MatchSession | None = None,
) -> MethodRow:
    """MinoanER with the paper's default configuration.

    Pass a :class:`~repro.pipeline.session.MatchSession` over the same KB
    pair to reuse cached blocking/index artifacts across repeated calls
    (ablations, parameter sweeps); the emitted matches are identical to a
    one-shot ``MinoanER(config).match(...)``.
    """
    if session is not None:
        result = session.match(config)
    else:
        result = MinoanER(config).match(dataset.kb1, dataset.kb2)
    quality = evaluate_matching(result.pairs(), dataset.ground_truth)
    by_heuristic = ", ".join(
        f"{name}={count}" for name, count in sorted(result.by_heuristic().items())
    )
    return MethodRow(dataset.profile.name, "MinoanER", quality, by_heuristic)


def run_bsl(
    dataset: GeneratedDataset,
    ngram_sizes: Sequence[int] = (1, 2, 3),
    thresholds: Sequence[float] | None = None,
) -> MethodRow:
    """BSL on the purged token blocks, grid-searched for best F1."""
    blocks, _ = purge_blocks(
        token_blocking(dataset.kb1, dataset.kb2, Tokenizer())
    )
    baseline = (
        BslBaseline(ngram_sizes=ngram_sizes)
        if thresholds is None
        else BslBaseline(ngram_sizes=ngram_sizes, thresholds=thresholds)
    )
    result = baseline.run(
        dataset.kb1, dataset.kb2, blocks, dataset.ground_truth.as_mapping()
    )
    quality = evaluate_matching(result.mapping, dataset.ground_truth)
    return MethodRow(
        dataset.profile.name, "BSL", quality, result.configuration.label()
    )


def run_sigma(dataset: GeneratedDataset, threshold: float = 0.2) -> MethodRow:
    """SiGMa-style matcher with the generator's relation alignment."""
    extractor1, extractor2 = _name_extractors(dataset)
    matcher = SigmaMatcher(
        extractor1,
        extractor2,
        relation_alignment=dataset.relation_alignment,
        threshold=threshold,
    )
    result = matcher.match(dataset.kb1, dataset.kb2)
    quality = evaluate_matching(result.mapping, dataset.ground_truth)
    return MethodRow(
        dataset.profile.name, "SiGMa", quality, f"seeds={result.seeds}"
    )


def run_paris(dataset: GeneratedDataset) -> MethodRow:
    """PARIS-style probabilistic matcher (no domain knowledge)."""
    result = ParisMatcher().match(dataset.kb1, dataset.kb2)
    quality = evaluate_matching(result.mapping, dataset.ground_truth)
    return MethodRow(dataset.profile.name, "PARIS", quality)


def run_rimom(dataset: GeneratedDataset) -> MethodRow:
    """RiMOM-IM-style matcher with the generator's relation alignment."""
    extractor1, extractor2 = _name_extractors(dataset)
    matcher = RimomMatcher(
        extractor1, extractor2, relation_alignment=dataset.relation_alignment
    )
    result = matcher.match(dataset.kb1, dataset.kb2)
    quality = evaluate_matching(result.mapping, dataset.ground_truth)
    return MethodRow(
        dataset.profile.name,
        "RiMOM",
        quality,
        f"seeds={result.seeds}, completions={result.completions}",
    )


def run_linda(dataset: GeneratedDataset) -> MethodRow:
    """LINDA-style matcher (label-similar relation gate)."""
    result = LindaMatcher().match(dataset.kb1, dataset.kb2)
    quality = evaluate_matching(result.mapping, dataset.ground_truth)
    return MethodRow(dataset.profile.name, "LINDA", quality)


METHOD_RUNNERS: Mapping[str, Callable[[GeneratedDataset], MethodRow]] = {
    "SiGMa": run_sigma,
    "LINDA": run_linda,
    "RiMOM": run_rimom,
    "PARIS": run_paris,
    "BSL": run_bsl,
    "MinoanER": run_minoaner,
}
