"""Matching effectiveness metrics under the paper's protocol.

The paper reports precision, recall and F1 "with respect to the
descriptions in the first KB appearing in the ground truth": recall counts
how many ground-truth E1 entities received their correct match, and
precision is measured over the emitted pairs whose E1 entity belongs to
the ground truth (the KBs also contain neighbors that have no counterpart
at all — predictions on those are out of scope for the benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..datasets.ground_truth import GroundTruth


@dataclass(frozen=True)
class MatchingQuality:
    """Precision / recall / F1 with the underlying counts."""

    true_positives: int
    emitted: int
    n_matches: int

    @property
    def precision(self) -> float:
        if self.emitted == 0:
            return 0.0
        return self.true_positives / self.emitted

    @property
    def recall(self) -> float:
        if self.n_matches == 0:
            return 0.0
        return self.true_positives / self.n_matches

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2 * p * r / (p + r)

    def as_row(self) -> dict[str, float]:
        """Percent-scaled metric dict, as the paper's tables print them."""
        return {
            "precision": 100.0 * self.precision,
            "recall": 100.0 * self.recall,
            "f1": 100.0 * self.f1,
        }

    def __repr__(self) -> str:
        return (
            f"MatchingQuality(P={100 * self.precision:.2f} "
            f"R={100 * self.recall:.2f} F1={100 * self.f1:.2f})"
        )


def _as_pairs(
    predicted: Mapping[str, str] | Iterable[tuple[str, str]],
) -> set[tuple[str, str]]:
    if isinstance(predicted, Mapping):
        return set(predicted.items())
    return set(predicted)


def evaluate_matching(
    predicted: Mapping[str, str] | Iterable[tuple[str, str]],
    ground_truth: GroundTruth | Mapping[str, str],
    restrict_to_gt_entities: bool = True,
) -> MatchingQuality:
    """Score predicted pairs against the ground truth.

    With ``restrict_to_gt_entities`` (the paper's protocol), predicted
    pairs whose E1 entity never appears in the ground truth are ignored:
    the benchmark KBs deliberately include unmatched context entities
    (e.g. neighbors), and no method is penalized for linking those.
    """
    if not isinstance(ground_truth, GroundTruth):
        ground_truth = GroundTruth(ground_truth)
    pairs = _as_pairs(predicted)
    if restrict_to_gt_entities:
        gt_entities1 = ground_truth.entities1()
        pairs = {(u1, u2) for u1, u2 in pairs if u1 in gt_entities1}
    true_positives = sum(
        1 for u1, u2 in pairs if ground_truth.contains_pair(u1, u2)
    )
    return MatchingQuality(
        true_positives=true_positives,
        emitted=len(pairs),
        n_matches=len(ground_truth),
    )
