"""Evaluation: matching metrics, table rendering, experiment runners."""

from .experiment import (
    METHOD_RUNNERS,
    MethodRow,
    run_bsl,
    run_linda,
    run_minoaner,
    run_paris,
    run_rimom,
    run_sigma,
)
from .metrics import MatchingQuality, evaluate_matching
from .report import format_number, paper_vs_measured, render_records, render_table

__all__ = [
    "METHOD_RUNNERS",
    "MatchingQuality",
    "MethodRow",
    "evaluate_matching",
    "format_number",
    "paper_vs_measured",
    "render_records",
    "render_table",
    "run_bsl",
    "run_linda",
    "run_minoaner",
    "run_paris",
    "run_rimom",
    "run_sigma",
]
