"""Plain-text table rendering for experiment reports.

The benches print paper-style tables to stdout; this module keeps the
formatting in one place (fixed-width columns, numeric rounding, optional
paper-reference columns for side-by-side comparison).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_number(value: object, decimals: int = 2) -> str:
    """Human-friendly rendering of ints, floats and everything else."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        if abs(value) >= 1_000_000:
            return f"{value:.2e}"
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1_000_000 or abs(value) < 0.01):
            return f"{value:.2e}"
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    decimals: int = 2,
) -> str:
    """A fixed-width text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ----
    1  2.50
    """
    text_rows = [
        [format_number(cell, decimals) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_records(
    records: Sequence[Mapping[str, object]],
    title: str | None = None,
    decimals: int = 2,
) -> str:
    """Render a list of same-keyed dicts as a table (keys become headers)."""
    if not records:
        return title or "(no rows)"
    headers = list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return render_table(headers, rows, title=title, decimals=decimals)


def paper_vs_measured(
    label: str, paper_value: float | None, measured: float
) -> dict[str, object]:
    """One comparison row for EXPERIMENTS.md-style tables."""
    return {
        "metric": label,
        "paper": "-" if paper_value is None else paper_value,
        "measured": round(measured, 2),
    }
