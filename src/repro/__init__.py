"""repro: a from-scratch reproduction of MinoanER (ICDE 2018).

Schema-agnostic, non-iterative entity resolution on Web data: name/token
blocking with Block Purging, statistics-driven name and relation
discovery, block-derived value and neighbor similarities, and four
threshold-free heuristics (H1 names, H2 values, H3 rank aggregation,
H4 reciprocity).

Quickstart::

    from repro import KnowledgeBase, EntityDescription, MinoanER

    kb1, kb2 = KnowledgeBase("A"), KnowledgeBase("B")
    ...  # add EntityDescriptions
    result = MinoanER().match(kb1, kb2)
    print(result.pairs())
"""

from .core.config import PAPER_DEFAULTS, MinoanERConfig
from .core.pipeline import MatchResult, MinoanER, match_kbs
from .engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    auto_workers,
    create_executor,
)
from .pipeline import (
    BLOCKING_SCHEMES,
    HEURISTICS,
    Heuristic,
    MatchSession,
    PipelineBuilder,
    PipelineContext,
    Stage,
    StageGraph,
)
from .store import Snapshot, SnapshotError, load_session, verify_snapshot
from .datasets.generator import GeneratedDataset
from .datasets.ground_truth import GroundTruth
from .datasets.profiles import PROFILE_ORDER, generate_benchmark
from .evaluation.metrics import MatchingQuality, evaluate_matching
from .kb.entity import EntityDescription, Literal, UriRef
from .kb.knowledge_base import KnowledgeBase
from .kb.tokenizer import Tokenizer

__version__ = "1.0.0"

__all__ = [
    "BLOCKING_SCHEMES",
    "EntityDescription",
    "GeneratedDataset",
    "GroundTruth",
    "HEURISTICS",
    "Heuristic",
    "KnowledgeBase",
    "Literal",
    "MatchResult",
    "MatchSession",
    "MatchingQuality",
    "MinoanER",
    "MinoanERConfig",
    "PAPER_DEFAULTS",
    "PROFILE_ORDER",
    "PipelineBuilder",
    "PipelineContext",
    "ProcessExecutor",
    "SerialExecutor",
    "Snapshot",
    "SnapshotError",
    "Stage",
    "StageGraph",
    "ThreadExecutor",
    "Tokenizer",
    "UriRef",
    "auto_workers",
    "create_executor",
    "evaluate_matching",
    "generate_benchmark",
    "load_session",
    "match_kbs",
    "verify_snapshot",
    "__version__",
]
