"""Counters, gauges and histograms with exact cross-process merging.

A :class:`MetricsRegistry` hands out named instruments on first use
(``registry.counter("blocking.blocks_built").inc(n)``) and can render
itself as a picklable :meth:`snapshot` that another registry
:meth:`merge`\\ s in — the mechanism engine workers use to ship their
locally accumulated metrics back to the driver.  Merging is exact:
counters add, histograms combine their count/total/min/max moments, and
gauges keep the last written value — so the merged totals of a run are
identical no matter how many workers (or processes) contributed.

Instrument names are dot-namespaced by subsystem (``blocking.*``,
``similarity.*``, ``matching.*``, ``session.*``, ``incremental.*``,
``snapshot.*``, ``engine.*``); ``docs/OBSERVABILITY.md`` lists every
name the pipeline emits.  The ``engine.*`` namespace is the only one
whose values may legitimately differ between runs with different worker
counts (H3's candidate preloading chunks by worker count — see
:mod:`repro.engine.matching`); everything else is a pure function of the
data and configuration.

:data:`NULL_METRICS` is the disabled twin: every instrument accessor
returns a shared do-nothing instrument, so instrumented code pays one
attribute call and one no-op method call when telemetry is off.
"""

from __future__ import annotations

import math
from typing import Any, Iterable


class Counter:
    """A monotonically increasing sum (int or float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; merging keeps the last one written."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Count/total/min/max moments of an observed distribution.

    Deliberately bucket-free: the moments merge exactly across workers
    (no bucket-boundary drift), which is what the cross-executor parity
    guarantee needs; percentile questions belong in the trace.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total: int | float = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass


#: The shared do-nothing instrument disabled registries hand out.
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments plus exact snapshot/merge across processes."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (created on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Cross-process transport
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A picklable plain-dict image of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: (hist.count, hist.total, hist.minimum, hist.maximum)
                for name, hist in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict[str, dict[str, Any]] | None) -> None:
        """Fold one :meth:`snapshot` into this registry, exactly."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, moments in snapshot.get("histograms", {}).items():
            count, total, minimum, maximum = moments
            hist = self.histogram(name)
            hist.count += count
            hist.total += total
            if minimum < hist.minimum:
                hist.minimum = minimum
            if maximum > hist.maximum:
                hist.maximum = maximum

    # ------------------------------------------------------------------
    # Read-side views
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int | float]:
        """counter name -> value, sorted by name."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready rendering of every instrument (sorted names)."""
        return {
            "counters": self.counters(),
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "min": None if hist.count == 0 else hist.minimum,
                    "max": None if hist.count == 0 else hist.maximum,
                    "mean": hist.mean,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def names(self) -> Iterable[str]:
        """Every instrument name currently registered."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} instruments)"


class NullMetrics:
    """The disabled registry: shared no-op instruments, empty views."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict[str, dict[str, Any]]:
        return {}

    def merge(self, snapshot: dict[str, dict[str, Any]] | None) -> None:
        pass

    def counters(self) -> dict[str, int | float]:
        return {}

    def as_dict(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def names(self) -> Iterable[str]:
        return ()

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullMetrics()"


#: The shared disabled registry (safe: it holds no state).
NULL_METRICS = NullMetrics()
