"""Structured tracing and metrics for the whole pipeline.

The observability layer (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.trace` — hierarchical spans (run → stage → engine
  dispatch → partition task) recording wall/CPU time, peak RSS and
  free-form attributes;
- :mod:`repro.obs.metrics` — counters/gauges/histograms with exact
  snapshot/merge semantics across worker processes;
- :mod:`repro.obs.runtime` — the ambient :class:`Telemetry` bundle:
  ``with activate(Telemetry.create()):`` turns a run's telemetry on,
  :func:`current` reads it anywhere, and disabled mode costs one
  thread-local read plus no-op instrument calls;
- :mod:`repro.obs.export` — Chrome trace-event JSON
  (Perfetto-loadable), a human-readable summary table, and Prometheus
  text exposition;
- :mod:`repro.obs.validate` — structural validation of emitted traces
  (also ``python -m repro.obs.validate trace.json``).

Example::

    from repro.obs import Telemetry, activate, write_chrome_trace

    telemetry = Telemetry.create()
    with activate(telemetry):
        result = session.match()
    write_chrome_trace("trace.json", telemetry)
    print(telemetry.metrics.counters()["similarity.value_pairs_scored"])
"""

from .export import (
    TRACE_SCHEMA,
    chrome_trace,
    prometheus_text,
    summary_table,
    write_chrome_trace,
)
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .runtime import (
    DISABLED,
    Telemetry,
    activate,
    current,
    run_traced_partition,
)
from .trace import NULL_TRACER, NullTracer, SpanRecord, Tracer
from .validate import validate_chrome_trace

__all__ = [
    "TRACE_SCHEMA",
    "chrome_trace",
    "prometheus_text",
    "summary_table",
    "write_chrome_trace",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "DISABLED",
    "Telemetry",
    "activate",
    "current",
    "run_traced_partition",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "validate_chrome_trace",
]
