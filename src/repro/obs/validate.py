"""Structural validation of emitted Chrome traces (``repro-trace/1``).

:func:`validate_chrome_trace` checks everything a consumer relies on:
the schema tag, the event envelope (name/cat/ph/ts/dur/pid/tid/args,
``ph == "X"``, non-negative times), span-id integrity (unique ids,
parents that exist), and the presence of the hierarchy's anchor
categories (at least one ``run`` and one ``stage`` event).  Returns a
list of problems — empty means valid.

Runnable as a module for CI smoke jobs::

    PYTHONPATH=src python -m repro.obs.validate /tmp/trace.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from .export import TRACE_SCHEMA

_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def validate_chrome_trace(data: Any) -> list[str]:
    """Problems with a parsed trace JSON object (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    schema = (data.get("otherData") or {}).get("schema")
    if schema != TRACE_SCHEMA:
        problems.append(
            f"otherData.schema is {schema!r}, expected {TRACE_SCHEMA!r}"
        )
    metrics = (data.get("otherData") or {}).get("metrics")
    if not isinstance(metrics, dict):
        problems.append("otherData.metrics is not an object")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("traceEvents is not a non-empty list")
        return problems

    seen_ids: set[int] = set()
    categories: set[str] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        missing = [key for key in _REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            problems.append(f"{where} lacks keys: {', '.join(missing)}")
            continue
        if event["ph"] != "X":
            problems.append(f"{where} ph is {event['ph']!r}, expected 'X'")
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)) or event[key] < 0:
                problems.append(f"{where}.{key} is not a non-negative number")
        if not isinstance(event["args"], dict):
            problems.append(f"{where}.args is not an object")
            continue
        span_id = event["args"].get("span_id")
        if not isinstance(span_id, int):
            problems.append(f"{where}.args.span_id is not an integer")
        elif span_id in seen_ids:
            problems.append(f"{where} duplicates span_id {span_id}")
        else:
            seen_ids.add(span_id)
        categories.add(event["cat"])

    for index, event in enumerate(events):
        if not isinstance(event, dict) or not isinstance(
            event.get("args"), dict
        ):
            continue
        parent_id = event["args"].get("parent_id")
        if parent_id is not None and parent_id not in seen_ids:
            problems.append(
                f"traceEvents[{index}] parent_id {parent_id} matches no span"
            )

    for required in ("run", "stage"):
        if required not in categories:
            problems.append(f"no {required!r}-category event in the trace")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.validate TRACE.json", file=sys.stderr)
        return 2
    path = Path(args[0])
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read trace {path}: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(data)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    events = data["traceEvents"]
    print(f"valid {TRACE_SCHEMA} trace: {len(events)} events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
