"""Hierarchical spans: who ran, under whom, for how long, at what cost.

A :class:`Tracer` records :class:`SpanRecord`\\ s — one per ``with
tracer.span(...)`` block — with wall time, CPU time, the process's peak
RSS at span exit, the owning pid/tid, and free-form ``args``.  Nesting
is tracked per thread: a span opened while another is active becomes its
child, giving the run → stage → engine dispatch → partition task
hierarchy the exporters render.

Worker processes (and threads) record into their own tracer; the driver
re-parents their records under the dispatch span with :meth:`absorb`,
which renumbers span ids into the driver's id space so the merged trace
stays a single consistent tree.

Clocks: ``start_ns`` is ``time.time_ns()`` (one wall clock across all
processes of a run — what Chrome trace timestamps need), durations are
``perf_counter_ns`` differences (monotonic), CPU is
``process_time_ns``.  Spans therefore line up on a shared timeline even
when recorded in different processes on the same machine.

:data:`NULL_TRACER` is the disabled twin.  Its spans still measure wall
seconds (two ``perf_counter`` calls — the exact cost the pipeline's
pre-telemetry stage timing paid) because ``stage_seconds`` is derived
from span timing even when tracing is off; nothing is recorded.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

try:  # pragma: no cover - resource is POSIX-only
    import resource

    def _peak_rss_kb() -> int:
        """The process's lifetime peak RSS in KiB (Linux ru_maxrss unit)."""
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

except ImportError:  # pragma: no cover - non-POSIX fallback

    def _peak_rss_kb() -> int:
        return 0


@dataclass
class SpanRecord:
    """One finished span (everything exporters need, nothing live)."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_ns: int
    duration_ns: int
    cpu_ns: int
    peak_rss_kb: int
    pid: int
    tid: int
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9


class _Span:
    """A live span; becomes a :class:`SpanRecord` on exit.

    ``seconds`` is valid after exit (and is exactly
    ``record.duration_ns / 1e9``, so span-derived stage timing and the
    exported trace reconcile bit-for-bit).  ``set(key=value)`` adds
    args any time before exit.
    """

    __slots__ = (
        "_tracer",
        "span_id",
        "parent_id",
        "name",
        "category",
        "args",
        "_start_wall_ns",
        "_start_perf_ns",
        "_start_cpu_ns",
        "seconds",
        "record",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str,
        args: dict[str, Any] | None,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.args = dict(args) if args else {}
        self.seconds = 0.0
        self.record: SpanRecord | None = None

    def set(self, **args: Any) -> None:
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._tracer._push(self)
        self._start_wall_ns = time.time_ns()
        self._start_cpu_ns = time.process_time_ns()
        self._start_perf_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration_ns = time.perf_counter_ns() - self._start_perf_ns
        cpu_ns = time.process_time_ns() - self._start_cpu_ns
        self.seconds = duration_ns / 1e9
        self.record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            category=self.category,
            start_ns=self._start_wall_ns,
            duration_ns=duration_ns,
            cpu_ns=cpu_ns,
            peak_rss_kb=_peak_rss_kb(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            args=self.args,
        )
        self._tracer._pop(self)


class Tracer:
    """Thread-safe span recorder with per-thread nesting.

    ``max_records`` bounds the retained record list for long-running
    processes (the resolution daemon traces every request): once the
    bound is reached, the **oldest** records are discarded and
    :attr:`dropped` counts the loss, so recent activity stays
    inspectable at a fixed memory ceiling.  ``None`` (the default, and
    what batch runs use) retains everything.
    """

    enabled = True

    def __init__(self, max_records: int | None = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 1
        self._stacks = threading.local()
        self._max_records = max_records
        #: Records discarded to honour ``max_records``.
        self.dropped = 0

    def _trim_locked(self) -> None:
        bound = self._max_records
        if bound is not None and len(self._records) > bound:
            excess = len(self._records) - bound
            del self._records[:excess]
            self.dropped += excess

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "pipeline",
        args: dict[str, Any] | None = None,
    ) -> _Span:
        """A context manager recording one span under the active parent."""
        stack = getattr(self._stacks, "stack", None)
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return _Span(self, span_id, parent_id, name, category, args)

    def _push(self, span: _Span) -> None:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        stack.append(span)

    def _pop(self, span: _Span) -> None:
        stack = getattr(self._stacks, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._records.append(span.record)
            self._trim_locked()

    # ------------------------------------------------------------------
    # Worker record absorption
    # ------------------------------------------------------------------
    def absorb(
        self, records: list[SpanRecord], parent_id: int | None = None
    ) -> None:
        """Re-parent a worker tracer's records under ``parent_id``.

        Span ids are renumbered into this tracer's id space (worker
        tracers all start counting at 1); records whose parent is not in
        the absorbed batch — the worker's root spans — get
        ``parent_id``.  Records are kept in the worker's order.
        """
        if not records:
            return
        with self._lock:
            mapping = {}
            for record in records:
                mapping[record.span_id] = self._next_id
                self._next_id += 1
            for record in records:
                record.span_id = mapping[record.span_id]
                record.parent_id = mapping.get(record.parent_id, parent_id)
                self._records.append(record)
            self._trim_locked()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        """Every finished span recorded so far (completion order)."""
        with self._lock:
            return list(self._records)

    def seconds_by_name(self) -> dict[str, float]:
        """Total wall seconds per span name (summed over calls)."""
        totals: dict[str, float] = {}
        for record in self.records():
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return f"Tracer({len(self)} spans)"


class _NullSpan:
    """A disabled span: measures wall seconds, records nothing.

    The measurement is not optional — ``stage_seconds`` derives from
    span timing whether or not tracing is on, and two
    ``perf_counter_ns`` calls are exactly what the pre-telemetry timing
    paths cost.
    """

    __slots__ = ("_start_ns", "seconds")

    record = None

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = (time.perf_counter_ns() - self._start_ns) / 1e9


class NullTracer:
    """The disabled tracer (see :class:`_NullSpan`)."""

    enabled = False

    def span(
        self,
        name: str,
        category: str = "pipeline",
        args: dict[str, Any] | None = None,
    ) -> _NullSpan:
        return _NullSpan()

    def absorb(
        self, records: list[SpanRecord], parent_id: int | None = None
    ) -> None:
        pass

    def records(self) -> list[SpanRecord]:
        return []

    def seconds_by_name(self) -> dict[str, float]:
        return {}

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared disabled tracer (safe: spans carry their own state).
NULL_TRACER = NullTracer()
