"""Ambient telemetry: one tracer + one metrics registry per run.

A :class:`Telemetry` bundles a tracer and a metrics registry.  Code that
emits telemetry never receives it as a parameter — it asks for the
ambient instance with :func:`current`, which returns whatever
:func:`activate` last installed *on this thread*, or the shared
:data:`DISABLED` bundle.  That keeps every signature in the pipeline
unchanged: enabling telemetry is ``with activate(Telemetry.create()):``
around the run, and disabled-mode overhead is one thread-local read plus
no-op instrument calls.

The activation stack is thread-local on purpose: pool workers (threads
or processes) do not inherit the driver's telemetry.  Instead the
engine wraps partition functions in :func:`run_traced_partition`, which
gives each worker invocation a fresh enabled bundle and ships the
picklable results (value, metrics snapshot, span records) back for the
driver to merge — the mechanism that makes cross-process counters exact.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from .trace import NULL_TRACER, NullTracer, SpanRecord, Tracer


@dataclass
class Telemetry:
    """One run's tracer + metrics, enabled or the shared null pair."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry | NullMetrics
    enabled: bool

    @classmethod
    def create(cls, max_span_records: int | None = None) -> "Telemetry":
        """A fresh enabled bundle (one per observed run).

        ``max_span_records`` bounds the tracer's retained records
        (oldest dropped first) — what long-running processes like the
        resolution daemon pass so per-request spans cannot grow memory
        without limit.  ``None`` retains everything (batch default).
        """
        return cls(
            tracer=Tracer(max_records=max_span_records),
            metrics=MetricsRegistry(),
            enabled=True,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared disabled bundle (no state, safe to share)."""
        return DISABLED


#: The shared disabled bundle :func:`current` falls back to.
DISABLED = Telemetry(tracer=NULL_TRACER, metrics=NULL_METRICS, enabled=False)

_active = threading.local()


def current() -> Telemetry:
    """The telemetry active on this thread (:data:`DISABLED` if none)."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else DISABLED


@contextmanager
def activate(telemetry: Telemetry | None) -> Iterator[Telemetry]:
    """Install ``telemetry`` as this thread's ambient instance.

    ``None`` keeps whatever is already active (so call sites can thread
    an optional telemetry without branching).
    """
    if telemetry is None:
        yield current()
        return
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    stack.append(telemetry)
    try:
        yield telemetry
    finally:
        stack.pop()


def run_traced_partition(
    partition: Any, fn: Callable[[Any], Any], label: str
) -> tuple[Any, dict, list[SpanRecord]]:
    """Run one partition under fresh worker-local telemetry.

    Module-level (and invoked via :func:`functools.partial`) so process
    pools can pickle it.  Returns ``(result, metrics snapshot, span
    records)`` — everything the driver needs to merge the worker's
    telemetry exactly; the task span's args carry the partition size
    when the partition has one.
    """
    telemetry = Telemetry.create()
    args: dict[str, Any] = {}
    try:
        args["items"] = len(partition)
    except TypeError:
        pass
    with activate(telemetry):
        with telemetry.tracer.span(f"task:{label}", category="task", args=args):
            result = fn(partition)
    return result, telemetry.metrics.snapshot(), telemetry.tracer.records()
