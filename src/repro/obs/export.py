"""Exporters: Chrome trace-event JSON, summary table, Prometheus text.

Three renderings of one run's telemetry:

- :func:`chrome_trace` — the Chrome trace-event format (complete
  ``"ph": "X"`` events), loadable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``.  Timestamps are microseconds relative to the
  earliest span, so traces are small and diff-stable; each event's
  ``args`` carry the span's CPU milliseconds, peak RSS and recorded
  attributes, and ``otherData`` embeds the schema tag plus the full
  metrics rendering.
- :func:`summary_table` — a terminal-friendly rollup (span totals by
  name, then every counter/gauge/histogram), what the CLI's
  ``--metrics`` prints.
- :func:`prometheus_text` — Prometheus text exposition (version 0.0.4)
  for the future matching-as-a-service daemon; histograms export as
  summaries (``_count``/``_sum``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - types only
    from .runtime import Telemetry

#: Schema tag of the emitted Chrome trace (``otherData.schema``).
TRACE_SCHEMA = "repro-trace/1"


def chrome_trace(telemetry: "Telemetry") -> dict[str, Any]:
    """The run's spans + metrics as a Chrome trace-event JSON object."""
    records = telemetry.tracer.records()
    epoch_ns = min((r.start_ns for r in records), default=0)
    events = []
    for record in records:
        args = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "cpu_ms": round(record.cpu_ns / 1e6, 3),
            "peak_rss_kb": record.peak_rss_kb,
        }
        args.update(record.args)
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": (record.start_ns - epoch_ns) / 1e3,
                "dur": record.duration_ns / 1e3,
                "pid": record.pid,
                "tid": record.tid,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "metrics": telemetry.metrics.as_dict(),
        },
    }


def write_chrome_trace(path: str | Path, telemetry: "Telemetry") -> Path:
    """Write :func:`chrome_trace` to ``path`` (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(chrome_trace(telemetry), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def _aligned(rows: list[tuple[str, ...]]) -> list[str]:
    """Left-align every column but the last (numbers read right-ragged)."""
    if not rows:
        return []
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(rows[0]) - 1)
    ]
    return [
        "  ".join(
            [cell.ljust(widths[i]) for i, cell in enumerate(row[:-1])]
            + [row[-1]]
        ).rstrip()
        for row in rows
    ]


def summary_table(telemetry: "Telemetry") -> str:
    """A human-readable rollup of spans and metrics."""
    lines: list[str] = []
    records = telemetry.tracer.records()
    if records:
        rollup: dict[tuple[str, str], tuple[int, int, int]] = {}
        order: list[tuple[str, str]] = []
        for record in records:
            key = (record.category, record.name)
            if key not in rollup:
                order.append(key)
                rollup[key] = (0, 0, 0)
            calls, wall_ns, cpu_ns = rollup[key]
            rollup[key] = (
                calls + 1,
                wall_ns + record.duration_ns,
                cpu_ns + record.cpu_ns,
            )
        rows = [("category", "span", "calls", "wall_s", "cpu_s")]
        for category, name in order:
            calls, wall_ns, cpu_ns = rollup[(category, name)]
            rows.append(
                (
                    category,
                    name,
                    str(calls),
                    f"{wall_ns / 1e9:.3f}",
                    f"{cpu_ns / 1e9:.3f}",
                )
            )
        lines.append("spans:")
        lines.extend("  " + line for line in _aligned(rows))
    rendered = telemetry.metrics.as_dict()
    counters = rendered["counters"]
    if counters:
        lines.append("counters:")
        lines.extend(
            "  " + line
            for line in _aligned(
                [(name, str(value)) for name, value in counters.items()]
            )
        )
    gauges = rendered["gauges"]
    if gauges:
        lines.append("gauges:")
        lines.extend(
            "  " + line
            for line in _aligned(
                [(name, str(value)) for name, value in gauges.items()]
            )
        )
    histograms = rendered["histograms"]
    if histograms:
        rows = [("histogram", "count", "total", "min", "max", "mean")]
        for name, moments in histograms.items():
            rows.append(
                (
                    name,
                    str(moments["count"]),
                    f"{moments['total']:g}",
                    "-" if moments["min"] is None else f"{moments['min']:g}",
                    "-" if moments["max"] is None else f"{moments['max']:g}",
                    f"{moments['mean']:g}",
                )
            )
        lines.append("histograms:")
        lines.extend("  " + line for line in _aligned(rows))
    return "\n".join(lines) if lines else "(no telemetry recorded)"


def _prometheus_name(name: str, prefix: str) -> str:
    sanitized = "".join(
        char if char.isalnum() or char == "_" else "_" for char in name
    )
    return f"{prefix}_{sanitized}"


def prometheus_text(telemetry: "Telemetry", prefix: str = "repro") -> str:
    """Prometheus text exposition of the metrics (counters, gauges,
    histograms-as-summaries)."""
    rendered = telemetry.metrics.as_dict()
    lines: list[str] = []
    for name, value in rendered["counters"].items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in rendered["gauges"].items():
        if value is None:
            continue
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, moments in rendered["histograms"].items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {moments['count']}")
        lines.append(f"{metric}_sum {moments['total']}")
    return "\n".join(lines) + ("\n" if lines else "")
