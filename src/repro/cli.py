"""Command-line interface for the MinoanER reproduction.

Subcommands::

    repro-er generate <profile> <directory> [--scale S] [--seed N]
        Generate a benchmark-like dataset bundle (N-Triples + CSVs).

    repro-er match <kb1.nt> <kb2.nt> [--output links.nt] [--theta T] ...
        Match two N-Triples KBs with MinoanER and write owl:sameAs links.
        --save-session DIR snapshots the bootstrapped session;
        --load-session DIR warm-starts from such a snapshot (composes
        with --apply-delta for incremental updates).

    repro-er evaluate <links.nt|csv> <ground_truth.csv>
        Score predicted links against a ground-truth CSV.

    repro-er stats <kb.nt>
        Print Table I-style statistics of one KB.

Also runnable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import csv
import json
import logging
import os
import sys
from pathlib import Path

from .core.config import MinoanERConfig
from .core.pipeline import MinoanER
from .engine.executor import EXECUTOR_NAMES
from .pipeline import BLOCKING_SCHEMES, HEURISTICS, render_stage_list
from .pipeline.stages import ENABLE_FLAGS
from .datasets.io import read_ground_truth_csv, save_dataset
from .datasets.profiles import PROFILE_ORDER, generate_benchmark
from .evaluation.metrics import evaluate_matching
from .evaluation.report import render_records
from .kb.io_ntriples import read_ntriples
from .kb.stats import kb_statistics
from .kb.tokenizer import Tokenizer

SAME_AS = "http://www.w3.org/2002/07/owl#sameAs"

log = logging.getLogger("repro.cli")


class _StdoutLogHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stdout`` at emit time.

    Progress lines share stdout with the report output, and resolving
    the stream lazily keeps the logger correct when stdout is replaced
    after configuration (tty redirection, test capture).
    """

    def __init__(self) -> None:
        super().__init__(stream=sys.stdout)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler.__init__ assigns it
        pass


def configure_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Configure the ``repro`` logger for CLI use (idempotent).

    Progress messages go to stdout at INFO; ``--verbose`` lowers the
    threshold to DEBUG and ``--quiet`` raises it to WARNING.  Report
    output (match pairs, evaluation scores) is printed directly and is
    not affected.
    """
    logger = logging.getLogger("repro")
    if not any(
        isinstance(handler, _StdoutLogHandler)
        for handler in logger.handlers
    ):
        handler = _StdoutLogHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.WARNING)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-er",
        description="Schema-agnostic, non-iterative entity resolution "
        "(MinoanER reproduction)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="show debug-level progress messages",
    )
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress messages (report output still prints)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a benchmark-like dataset bundle"
    )
    generate.add_argument("profile", choices=PROFILE_ORDER)
    generate.add_argument("directory")
    generate.add_argument("--scale", type=float, default=0.25)
    generate.add_argument("--seed", type=int, default=None)

    match = commands.add_parser("match", help="match two N-Triples KBs")
    match.add_argument("kb1", nargs="?", default=None)
    match.add_argument("kb2", nargs="?", default=None)
    match.add_argument("--output", default=None, help="links file (N-Triples)")
    match.add_argument(
        "--list-stages",
        action="store_true",
        help="print the pipeline stage graph and registered plugins, then exit",
    )
    match.add_argument(
        "--disable-stage",
        action="append",
        default=None,
        metavar="STAGE",
        help="disable a pipeline stage by name (repeatable); "
        f"disableable: {', '.join(sorted(DISABLABLE_STAGES))}",
    )
    match.add_argument(
        "--apply-delta",
        action="append",
        default=None,
        metavar="OP:KB:FILE",
        help="after the initial match, apply an entity delta incrementally "
        "and report the final matches: 'add:kb1:more.nt' (N-Triples of new "
        "entities) or 'remove:kb2:uris.txt' (one URI per line); repeatable, "
        "applied in order",
    )
    match.add_argument(
        "--save-session",
        default=None,
        metavar="DIR",
        help="after matching, snapshot the bootstrapped session (KBs, "
        "blocking placements, packed indices, decisions) to DIR for later "
        "warm starts",
    )
    match.add_argument(
        "--load-session",
        default=None,
        metavar="DIR",
        help="warm-start from a snapshot directory instead of KB files: "
        "the matching configuration comes from the snapshot (only "
        "--engine/--workers apply); composes with --apply-delta for "
        "incremental updates without re-bootstrapping",
    )
    match.add_argument(
        "--mmap",
        action="store_true",
        help="with --load-session, map the snapshot's columns into "
        "memory instead of copying them (near-instant warm start; "
        "column digests are verified lazily as pages are touched)",
    )
    match.add_argument("--theta", type=float, default=0.6)
    match.add_argument("--top-k", type=int, default=15)
    match.add_argument("--top-n-relations", type=int, default=3)
    match.add_argument("--name-attributes", type=int, default=2)
    match.add_argument(
        "--no-purging", action="store_true", help="disable Block Purging"
    )
    match.add_argument(
        "--no-reciprocity", action="store_true", help="disable H4"
    )
    match.add_argument(
        "--engine",
        choices=EXECUTOR_NAMES,
        default="serial",
        help="execution engine for the pipeline stages",
    )
    match.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for parallel engines (default: one per CPU)",
    )
    match.add_argument(
        "--no-degrade",
        action="store_true",
        help="with --engine process, fail the run instead of degrading "
        "to inline execution after repeated worker crashes",
    )
    match.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a hierarchical span trace of the run and write it "
        "as Chrome trace-event JSON (load it in Perfetto or "
        "chrome://tracing)",
    )
    match.add_argument(
        "--metrics",
        action="store_true",
        help="collect pipeline counters (blocks built, pairs scored, "
        "bytes shipped, ...) and print a summary table after the run",
    )

    evaluate = commands.add_parser(
        "evaluate", help="score predicted links against a ground truth"
    )
    evaluate.add_argument("predictions", help="links.nt or two-column CSV")
    evaluate.add_argument("ground_truth", help="two-column CSV")

    stats = commands.add_parser("stats", help="statistics of one KB")
    stats.add_argument("kb")

    serve = commands.add_parser(
        "serve",
        help="run the snapshot-backed resolution daemon",
        description="Serve matching over HTTP from a repro-snapshot/1 "
        "directory: read endpoints (/match, /candidates, /best, /stats, "
        "/healthz, /metrics) resolve against an immutable published "
        "state; POST /delta applies incremental updates; POST /snapshot "
        "and /reload manage persistence.  See docs/SERVING.md.",
    )
    serve.add_argument(
        "--snapshot",
        required=True,
        metavar="DIR",
        help="repro-snapshot/1 directory to load at startup",
    )
    serve.add_argument(
        "--mmap",
        action="store_true",
        help="map the snapshot's columns into memory instead of copying "
        "them (near-instant boot; /reload reuses the same mode)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750)
    serve.add_argument(
        "--engine",
        choices=EXECUTOR_NAMES,
        default=None,
        help="override the snapshot's execution engine",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for parallel engines",
    )
    serve.add_argument(
        "--auto-snapshot-every",
        type=int,
        default=0,
        metavar="N",
        help="snapshot automatically after every N applied delta "
        "requests, and on graceful shutdown (0 = manual POST /snapshot "
        "only)",
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="directory new snapshots are written under (default: the "
        "loaded snapshot's parent directory)",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="enable the write-ahead delta log in DIR: every POST /delta "
        "is durably logged before it is applied, and unsnapshotted "
        "batches found there replay on boot (see docs/PERSISTENCE.md)",
    )
    serve.add_argument(
        "--no-degrade",
        action="store_true",
        help="with a process engine, fail a dispatch instead of "
        "degrading to inline execution after repeated worker crashes",
    )

    resolve = commands.add_parser(
        "resolve",
        help="online-resolve raw records against a saved session",
        description="Resolve never-seen records without a daemon: load a "
        "repro-snapshot/1 session, tokenize each record, probe the packed "
        "token blocks and run the online H1-H4 ladder.  Records whose URI "
        "already exists in KB1 answer from the precomputed probe path.  "
        "One JSON object per record is printed, in input order.",
    )
    resolve.add_argument(
        "--session",
        required=True,
        metavar="DIR",
        help="repro-snapshot/1 directory to resolve against",
    )
    resolve.add_argument(
        "--records",
        required=True,
        metavar="FILE",
        help="records to resolve: a JSON array of record objects, or JSON "
        "Lines with one record per line; each record uses the delta wire "
        'format {"uri": ..., "pairs": [["attr", {"lit": ...}], ...]} '
        "('-' reads stdin)",
    )
    resolve.add_argument(
        "--k", type=int, default=None, help="candidate-list bound"
    )
    resolve.add_argument(
        "--mmap",
        action="store_true",
        help="map the snapshot's columns instead of copying them",
    )
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations (each returns a process exit code)
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_benchmark(args.profile, scale=args.scale, seed=args.seed)
    bundle = save_dataset(dataset, args.directory)
    print(
        f"wrote {bundle}: |E1|={len(dataset.kb1)} |E2|={len(dataset.kb2)} "
        f"matches={len(dataset.ground_truth)}"
    )
    return 0


#: Stage/heuristic names ``--disable-stage`` accepts, with the config or
#: graph change each maps to.  Disabling anything else would leave a
#: downstream stage without its required artifacts.
DISABLABLE_STAGES = ("h1", "h2", "h3", "h4", "purging", "name_blocking")


class _UsageError(Exception):
    """A CLI usage problem (reported on stderr, exit code 2)."""


def _apply_disabled(builder, disabled: list[str]) -> None:
    """Translate ``--disable-stage`` names into an explicit composition.

    Heuristic names shrink the heuristic sequence; ``name_blocking``
    additionally drops H1, which needs the name blocks; ``purging`` is a
    token-blocking config toggle.  When H1 ends up disabled by either
    route, the ``name_blocking`` stage is dropped too — nothing would
    consume its output.
    """
    heuristics = [
        name
        for name, flag in ENABLE_FLAGS.items()
        if getattr(builder.config, flag)
    ]
    recompose = False
    for name in disabled:
        if name in ENABLE_FLAGS:
            if name in heuristics:
                heuristics.remove(name)
            recompose = True
        elif name == "purging":
            builder.with_config(purge_token_blocks=False)
        elif name == "name_blocking":
            if "h1" in heuristics:
                heuristics.remove("h1")
            recompose = True
        else:
            raise _UsageError(
                f"error: cannot disable stage {name!r}; "
                f"disableable: {', '.join(DISABLABLE_STAGES)}"
            )
    if recompose:
        if not heuristics:
            raise _UsageError("error: cannot disable every heuristic")
        if "h1" not in heuristics:
            builder.with_blocking("token")
        builder.with_heuristics(*heuristics)


def _print_stage_list(builder) -> None:
    print(render_stage_list(builder.build_graph()))
    print()
    print(f"registered blocking schemes: {', '.join(BLOCKING_SCHEMES.names())}")
    print(f"registered heuristics: {', '.join(HEURISTICS.names())}")


def _parse_delta_spec(spec: str) -> tuple[str, str, str]:
    """Split one ``--apply-delta`` value into (op, kb, path)."""
    parts = spec.split(":", 2)
    if len(parts) != 3 or parts[0] not in ("add", "remove") or parts[1] not in (
        "kb1",
        "kb2",
    ):
        raise _UsageError(
            f"error: bad delta spec {spec!r}; expected "
            "'add:<kb1|kb2>:<file.nt>' or 'remove:<kb1|kb2>:<file>'"
        )
    return parts[0], parts[1], parts[2]


def _parse_delta_specs(specs: list[str]) -> list[tuple[str, str, str]]:
    """Parse and validate every ``--apply-delta`` value up front.

    Fails before the (possibly expensive) initial match or snapshot
    load, not after.
    """
    parsed = [_parse_delta_spec(spec) for spec in specs]
    for _, _, path in parsed:
        if not Path(path).is_file():
            raise _UsageError(f"error: delta file not found: {path}")
    return parsed


def _run_deltas(matcher, parsed: list[tuple[str, str, str]], engine: str):
    """Match incrementally: initial run, then each delta, then the final.

    Returns the final :class:`~repro.core.pipeline.MatchResult`.
    """
    initial = matcher.match()
    log.info(
        "initial match: %d pairs in %.2fs [%s]",
        len(initial.matches),
        initial.seconds,
        engine,
    )
    baseline = dict(matcher.stage_recomputes)
    for op, kb_id, path in parsed:
        try:
            if op == "add":
                added = read_ntriples(path, name=Path(path).stem)
                count = matcher.add_entities(kb_id, list(added))
            else:
                with open(path, encoding="utf-8") as handle:
                    uris = [line.strip() for line in handle if line.strip()]
                count = matcher.remove_entities(kb_id, uris)
        except (KeyError, ValueError, OSError) as error:
            # Bad content in a user-supplied delta file (unknown or
            # duplicate URIs, unparsable triples) is a usage error; bugs
            # elsewhere in the run keep their tracebacks.
            raise _UsageError(f"error: delta {op}:{kb_id}:{path}: {error}")
        log.info("delta: %s %d entities on %s (%s)", op, count, kb_id, path)
    final = matcher.match()
    recomputed = {
        stage: count - baseline.get(stage, 0)
        for stage, count in matcher.stage_recomputes.items()
        if count > baseline.get(stage, 0)
    }
    log.info(
        "incremental match: %d pairs in %.2fs "
        "(stages recomputed by deltas: %s, delta-updated: %s)",
        len(final.matches),
        final.seconds,
        recomputed,
        matcher.counters()["delta_updated"],
    )
    return final


def _matched_result(args: argparse.Namespace, builder):
    """Produce the final MatchResult for ``match`` (cold or warm start),
    honouring --apply-delta and --save-session/--load-session."""
    from .incremental import IncrementalMatcher
    from .pipeline import MatchSession
    from .store import SnapshotError

    parsed = _parse_delta_specs(args.apply_delta) if args.apply_delta else None
    saver = None
    mode = "mmap" if args.mmap else "copy"
    if args.load_session:
        if args.kb1 is not None or args.kb2 is not None:
            raise _UsageError(
                "error: --load-session replaces the KB file arguments"
            )
        try:
            if parsed is not None:
                matcher = IncrementalMatcher.from_snapshot(
                    args.load_session,
                    engine=args.engine,
                    workers=args.workers,
                    mode=mode,
                )
                log.info("warm start from %s", args.load_session)
                result = _run_deltas(matcher, parsed, args.engine)
                saver = matcher.save
            else:
                session = MatchSession.load(
                    args.load_session,
                    engine=args.engine,
                    workers=args.workers,
                    mode=mode,
                )
                log.info("warm start from %s", args.load_session)
                result = session.match()
                saver = session.save
        except SnapshotError as error:
            raise _UsageError(f"error: cannot load session: {error}")
    else:
        if args.kb1 is None or args.kb2 is None:
            raise _UsageError(
                "error: match needs two KB files "
                "(or --list-stages / --load-session)"
            )
        kb1 = read_ntriples(args.kb1, name=Path(args.kb1).stem)
        kb2 = read_ntriples(args.kb2, name=Path(args.kb2).stem)
        if parsed is not None:
            matcher = IncrementalMatcher(builder.session(kb1, kb2))
            result = _run_deltas(matcher, parsed, args.engine)
            saver = matcher.save
        elif args.save_session:
            session = builder.session(kb1, kb2)
            result = session.match()
            saver = session.save
        else:
            result = builder.build().match(kb1, kb2)
    if args.save_session:
        try:
            target = saver(args.save_session)
        except SnapshotError as error:
            raise _UsageError(f"error: cannot save session: {error}")
        log.info("saved session snapshot to %s", target)
    return result


def cmd_match(args: argparse.Namespace) -> int:
    if args.engine == "serial" and args.workers is not None:
        print(
            "error: --workers has no effect with --engine serial; "
            "pass --engine thread or --engine process",
            file=sys.stderr,
        )
        return 2
    if args.no_degrade:
        os.environ["REPRO_ENGINE_NO_DEGRADE"] = "1"
    config = MinoanERConfig(
        theta=args.theta,
        top_k_candidates=args.top_k,
        top_n_relations=args.top_n_relations,
        name_attributes=args.name_attributes,
        purge_token_blocks=not args.no_purging,
        enable_h4_reciprocity=not args.no_reciprocity,
        engine=args.engine,
        workers=args.workers,
    )
    builder = MinoanER.builder(config)
    try:
        _apply_disabled(builder, args.disable_stage or [])
    except _UsageError as error:
        print(error, file=sys.stderr)
        return 2
    if args.list_stages:
        _print_stage_list(builder)
        return 0
    from .obs import Telemetry, activate

    telemetry = (
        Telemetry.create() if (args.trace or args.metrics) else None
    )
    try:
        with activate(telemetry):
            result = _matched_result(args, builder)
    except _UsageError as error:
        print(error, file=sys.stderr)
        return 2
    print(
        f"matched {len(result.matches)} pairs in {result.seconds:.2f}s "
        f"[{args.engine}] ({result.by_heuristic()})"
    )
    print(f"stages: {result.timing_summary()}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for uri1, uri2 in sorted(result.pairs()):
                handle.write(f"<{uri1}> <{SAME_AS}> <{uri2}> .\n")
        log.info("wrote %s", args.output)
    else:
        for uri1, uri2 in sorted(result.pairs()):
            print(f"{uri1}\t{uri2}")
    if telemetry is not None:
        from .obs import summary_table, write_chrome_trace

        if args.trace:
            target = write_chrome_trace(args.trace, telemetry)
            log.info("wrote trace to %s", target)
        if args.metrics:
            print(summary_table(telemetry))
    return 0


def _read_predictions(path: str) -> set[tuple[str, str]]:
    if path.endswith(".csv"):
        with open(path, encoding="utf-8", newline="") as handle:
            return {
                (row[0], row[1])
                for row in csv.reader(handle)
                if len(row) >= 2 and row[0] != "uri1"
            }
    kb = read_ntriples(path)
    pairs = set()
    for entity in kb:
        for predicate, target in entity.relation_pairs():
            if predicate == SAME_AS:
                pairs.add((entity.uri, target))
    return pairs


def cmd_evaluate(args: argparse.Namespace) -> int:
    predictions = _read_predictions(args.predictions)
    truth = read_ground_truth_csv(args.ground_truth)
    quality = evaluate_matching(predictions, truth)
    print(
        f"precision {100 * quality.precision:.2f}  "
        f"recall {100 * quality.recall:.2f}  "
        f"f1 {100 * quality.f1:.2f}  "
        f"({quality.true_positives}/{quality.emitted} correct, "
        f"{quality.n_matches} in ground truth)"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    kb = read_ntriples(args.kb, name=Path(args.kb).stem)
    stats = kb_statistics(kb, Tokenizer())
    print(render_records([stats.as_row()]))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.engine == "serial" and args.workers is not None:
        print(
            "error: --workers has no effect with --engine serial; "
            "pass --engine thread or --engine process",
            file=sys.stderr,
        )
        return 2
    from .serve import (
        ResolutionDaemon,
        build_server,
        install_signal_handlers,
        run,
    )
    from .serve.wal import WalError
    from .store import SnapshotError

    if args.no_degrade:
        os.environ["REPRO_ENGINE_NO_DEGRADE"] = "1"
    try:
        daemon = ResolutionDaemon.from_snapshot(
            args.snapshot,
            engine=args.engine,
            workers=args.workers,
            snapshot_dir=args.snapshot_dir,
            auto_snapshot_every=args.auto_snapshot_every,
            mode="mmap" if args.mmap else "copy",
            wal_dir=args.wal_dir,
        )
    except WalError as error:
        print(f"error: cannot replay WAL: {error}", file=sys.stderr)
        return 2
    except SnapshotError as error:
        print(f"error: cannot load snapshot: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server = build_server(daemon, host=args.host, port=args.port)
    install_signal_handlers(server)
    host, port = server.server_address[:2]
    state = daemon.state()
    log.info(
        "loaded %s: %d + %d entities, %d matches (generation %d)",
        args.snapshot,
        len(state.uris1),
        len(state.uris2),
        len(state.matches),
        state.generation,
    )
    print(f"serving on http://{host}:{port} (SIGTERM drains and saves)")
    run(daemon, server)
    return 0


def _read_records_file(path: str) -> list:
    """Parse ``--records``: a JSON array, or JSON Lines (one per line)."""
    from .serve.json_codec import DeltaFormatError, entity_from_dict

    if path == "-":
        raw = sys.stdin.read()
    else:
        if not Path(path).is_file():
            raise _UsageError(f"error: records file not found: {path}")
        raw = Path(path).read_text(encoding="utf-8")
    text = raw.strip()
    if not text:
        raise _UsageError(f"error: records file is empty: {path}")
    try:
        if text.startswith("["):
            entries = json.loads(text)
        else:
            entries = [
                json.loads(line)
                for line in text.splitlines()
                if line.strip()
            ]
    except json.JSONDecodeError as error:
        raise _UsageError(f"error: bad JSON in {path}: {error}")
    try:
        return [entity_from_dict(entry) for entry in entries]
    except DeltaFormatError as error:
        raise _UsageError(f"error: bad record in {path}: {error}")


def cmd_resolve(args: argparse.Namespace) -> int:
    from .pipeline import MatchSession
    from .store import SnapshotError

    if args.k is not None and args.k < 1:
        print("error: --k must be >= 1", file=sys.stderr)
        return 2
    try:
        records = _read_records_file(args.records)
    except _UsageError as error:
        print(error, file=sys.stderr)
        return 2
    try:
        session = MatchSession.load(
            args.session, mode="mmap" if args.mmap else "copy"
        )
    except SnapshotError as error:
        print(f"error: cannot load session: {error}", file=sys.stderr)
        return 2
    results = session.resolve_batch(records, args.k)
    matched = 0
    for result in results:
        if result.match is not None:
            matched += 1
        print(json.dumps(result.as_dict()))
    # The summary goes to stderr: stdout is a JSONL stream piped into
    # other tools (the repro logger writes progress to stdout, which
    # would corrupt it).
    print(
        f"resolved {len(results)} record(s): {matched} matched, "
        f"{sum(1 for result in results if result.known)} known",
        file=sys.stderr,
    )
    return 0


COMMANDS = {
    "generate": cmd_generate,
    "match": cmd_match,
    "evaluate": cmd_evaluate,
    "stats": cmd_stats,
    "serve": cmd_serve,
    "resolve": cmd_resolve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
