"""Knowledge-base substrate: entity descriptions, tokenization, I/O, graphs.

This package implements the data model the paper assumes: URI-identified
entity descriptions with literal- and URI-valued attributes, grouped into
knowledge bases that form entity graphs.
"""

from .entity import EntityDescription, Literal, UriRef, local_name
from .graph import NeighborIndex, inverse
from .io_json import kb_from_dict, kb_to_dict, read_json, write_json
from .io_ntriples import NTriplesError, read_ntriples, write_ntriples
from .knowledge_base import KnowledgeBase, types_of
from .stats import (
    DEFAULT_TYPE_ATTRIBUTES,
    DatasetStatistics,
    KbStatistics,
    dataset_statistics,
    kb_statistics,
)
from .tokenizer import Tokenizer, tokenize_text

__all__ = [
    "DEFAULT_TYPE_ATTRIBUTES",
    "DatasetStatistics",
    "EntityDescription",
    "KbStatistics",
    "KnowledgeBase",
    "Literal",
    "NTriplesError",
    "NeighborIndex",
    "Tokenizer",
    "UriRef",
    "dataset_statistics",
    "inverse",
    "kb_from_dict",
    "kb_statistics",
    "kb_to_dict",
    "local_name",
    "read_json",
    "read_ntriples",
    "tokenize_text",
    "types_of",
    "write_json",
    "write_ntriples",
]
