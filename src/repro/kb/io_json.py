"""JSON serialization of knowledge bases.

A compact, line-oriented-friendly JSON format for shipping generated
datasets and intermediate results.  Schema::

    {
      "name": "BBCmusic",
      "entities": [
        {"uri": "...",
         "pairs": [["attr", {"lit": "text"}], ["rel", {"ref": "uri"}], ...]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from .entity import EntityDescription, Literal, UriRef
from .knowledge_base import KnowledgeBase


def kb_to_dict(kb: KnowledgeBase) -> dict[str, Any]:
    """Plain-dict representation of a KB (JSON-serializable)."""
    entities = []
    for entity in kb:
        pairs: list[list[Any]] = []
        for attribute, value in entity:
            if isinstance(value, UriRef):
                pairs.append([attribute, {"ref": value.uri}])
            else:
                pairs.append([attribute, {"lit": value.value}])
        entities.append({"uri": entity.uri, "pairs": pairs})
    return {"name": kb.name, "entities": entities}


def kb_from_dict(data: dict[str, Any]) -> KnowledgeBase:
    """Rebuild a KB from :func:`kb_to_dict` output."""
    kb = KnowledgeBase(data.get("name", "KB"))
    for record in data["entities"]:
        entity = EntityDescription(record["uri"])
        for attribute, boxed in record.get("pairs", []):
            if "ref" in boxed:
                entity.add(attribute, UriRef(boxed["ref"]))
            elif "lit" in boxed:
                entity.add(attribute, Literal(boxed["lit"]))
            else:
                raise ValueError(f"malformed value box: {boxed!r}")
        kb.add(entity)
    return kb


def write_json(kb: KnowledgeBase, target: str | Path | TextIO, indent: int | None = None) -> None:
    """Serialize ``kb`` to a JSON file or stream."""
    payload = kb_to_dict(kb)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent)
    else:
        json.dump(payload, target, indent=indent)


def read_json(source: str | Path | TextIO) -> KnowledgeBase:
    """Load a KB written by :func:`write_json`."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            return kb_from_dict(json.load(handle))
    return kb_from_dict(json.load(source))
