"""Schema-agnostic tokenization of entity descriptions.

MinoanER treats a description as a *bag of tokens*: the words appearing in
its literal values, regardless of which attribute carries them.  This module
provides the single tokenizer used across blocking, value similarity and the
BSL baseline, so that every component sees the same token universe.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

from .entity import EntityDescription, local_name

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str, min_length: int = 1) -> list[str]:
    """Split ``text`` into lower-cased alphanumeric tokens.

    Tokens shorter than ``min_length`` characters are dropped.

    >>> tokenize_text("The Taj-Mahal, Agra (India)")
    ['the', 'taj', 'mahal', 'agra', 'india']
    """
    tokens = _TOKEN_PATTERN.findall(text.lower())
    if min_length > 1:
        tokens = [t for t in tokens if len(t) >= min_length]
    return tokens


class Tokenizer:
    """Extracts the schema-agnostic token bag of an entity description.

    Parameters
    ----------
    min_length:
        Minimum token length (shorter tokens are discarded).
    include_uri_localnames:
        When true, the local names of URI-valued objects are tokenized as
        well.  Useful for token-poor KBs (e.g. YAGO/IMDb-style data) where
        much of the content lives in URIs rather than literals.
    stop_words:
        Optional tokens to drop entirely (the pipeline normally relies on
        Block Purging instead of stop-word lists, as in the paper).
    """

    def __init__(
        self,
        min_length: int = 1,
        include_uri_localnames: bool = False,
        stop_words: Iterable[str] = (),
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        self.min_length = min_length
        self.include_uri_localnames = include_uri_localnames
        self.stop_words = frozenset(w.lower() for w in stop_words)
        # Per-entity token-bag memo keyed by object identity; the stored
        # entity reference both pins the id and detects stale reuse.
        self._token_cache: dict[
            int, tuple[EntityDescription, tuple[str, ...]]
        ] = {}

    def tokens(self, entity: EntityDescription) -> list[str]:
        """The token bag of ``entity`` (duplicates preserved)."""
        collected: list[str] = []
        for _, text in entity.literal_pairs():
            collected.extend(tokenize_text(text, self.min_length))
        if self.include_uri_localnames:
            for _, target in entity.relation_pairs():
                collected.extend(tokenize_text(local_name(target), self.min_length))
        if self.stop_words:
            collected = [t for t in collected if t not in self.stop_words]
        return collected

    def token_set(self, entity: EntityDescription) -> set[str]:
        """The distinct tokens of ``entity``."""
        return set(self.tokens(entity))

    def token_counts(self, entity: EntityDescription) -> Counter[str]:
        """Token multiplicities of ``entity`` (term frequencies)."""
        return Counter(self.tokens(entity))

    def cached_tokens(self, entity: EntityDescription) -> tuple[str, ...]:
        """The token bag of ``entity``, memoized per tokenizer.

        Descriptions are immutable in practice once loaded, so passes
        that revisit entities with one tokenizer — BSL's grid search
        tokenizes both KBs once per (n-gram, weighting, similarity)
        point — pay the tokenization exactly once.  Mutating an entity
        after it was cached will not be observed; use
        :meth:`clear_cache` in that case.
        """
        key = id(entity)
        hit = self._token_cache.get(key)
        if hit is not None and hit[0] is entity:
            return hit[1]
        bag = tuple(self.tokens(entity))
        self._token_cache[key] = (entity, bag)
        return bag

    def clear_cache(self) -> None:
        """Drop all memoized token bags."""
        self._token_cache.clear()

    def __getstate__(self) -> dict:
        # The memo is an identity-keyed local cache: ids are meaningless
        # in another process, so pickles (for process executors) drop it.
        state = self.__dict__.copy()
        state["_token_cache"] = {}
        return state

    def __repr__(self) -> str:
        return (
            f"Tokenizer(min_length={self.min_length}, "
            f"include_uri_localnames={self.include_uri_localnames}, "
            f"stop_words={len(self.stop_words)})"
        )
