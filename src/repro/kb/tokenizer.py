"""Schema-agnostic tokenization of entity descriptions.

MinoanER treats a description as a *bag of tokens*: the words appearing in
its literal values, regardless of which attribute carries them.  This module
provides the single tokenizer used across blocking, value similarity and the
BSL baseline, so that every component sees the same token universe.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

from .entity import EntityDescription, local_name

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize_text(text: str, min_length: int = 1) -> list[str]:
    """Split ``text`` into lower-cased alphanumeric tokens.

    Tokens shorter than ``min_length`` characters are dropped.

    >>> tokenize_text("The Taj-Mahal, Agra (India)")
    ['the', 'taj', 'mahal', 'agra', 'india']
    """
    tokens = _TOKEN_PATTERN.findall(text.lower())
    if min_length > 1:
        tokens = [t for t in tokens if len(t) >= min_length]
    return tokens


class Tokenizer:
    """Extracts the schema-agnostic token bag of an entity description.

    Parameters
    ----------
    min_length:
        Minimum token length (shorter tokens are discarded).
    include_uri_localnames:
        When true, the local names of URI-valued objects are tokenized as
        well.  Useful for token-poor KBs (e.g. YAGO/IMDb-style data) where
        much of the content lives in URIs rather than literals.
    stop_words:
        Optional tokens to drop entirely (the pipeline normally relies on
        Block Purging instead of stop-word lists, as in the paper).
    """

    def __init__(
        self,
        min_length: int = 1,
        include_uri_localnames: bool = False,
        stop_words: Iterable[str] = (),
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        self.min_length = min_length
        self.include_uri_localnames = include_uri_localnames
        self.stop_words = frozenset(w.lower() for w in stop_words)

    def tokens(self, entity: EntityDescription) -> list[str]:
        """The token bag of ``entity`` (duplicates preserved)."""
        collected: list[str] = []
        for _, text in entity.literal_pairs():
            collected.extend(tokenize_text(text, self.min_length))
        if self.include_uri_localnames:
            for _, target in entity.relation_pairs():
                collected.extend(tokenize_text(local_name(target), self.min_length))
        if self.stop_words:
            collected = [t for t in collected if t not in self.stop_words]
        return collected

    def token_set(self, entity: EntityDescription) -> set[str]:
        """The distinct tokens of ``entity``."""
        return set(self.tokens(entity))

    def token_counts(self, entity: EntityDescription) -> Counter[str]:
        """Token multiplicities of ``entity`` (term frequencies)."""
        return Counter(self.tokens(entity))

    def __repr__(self) -> str:
        return (
            f"Tokenizer(min_length={self.min_length}, "
            f"include_uri_localnames={self.include_uri_localnames}, "
            f"stop_words={len(self.stop_words)})"
        )
