"""Neighbor-graph utilities over a KnowledgeBase.

The entity graph of a KB (URI-valued attributes as edges) drives the
neighbor-similarity evidence of MinoanER.  :class:`NeighborIndex`
materializes adjacency once so that repeated neighbor lookups during
matching are O(1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from .knowledge_base import KnowledgeBase


class NeighborIndex:
    """Pre-computed adjacency of a KB's entity graph.

    Only *internal* edges are indexed: a URI-valued pair whose target is not
    a description of the same KB is treated as an opaque literal-like value
    and ignored (the paper's KBs are self-contained after preprocessing).

    Parameters
    ----------
    kb:
        The knowledge base to index.
    include_incoming:
        When true, reverse edges are indexed too, so neighbor queries see
        both directions (`subjects` pointing at an entity are its in-
        neighbors).  MinoanER's journal version exploits both directions;
        the default here follows the conference paper (outgoing only).
    """

    def __init__(self, kb: KnowledgeBase, include_incoming: bool = False) -> None:
        self.kb = kb
        self.include_incoming = include_incoming
        # uri -> list of (relation, neighbor uri); direction-tagged relation
        # names are used for incoming edges ("relation" vs "~relation").
        self._adjacency: dict[str, list[tuple[str, str]]] = defaultdict(list)
        for entity in kb:
            for relation, target in entity.relation_pairs():
                if target not in kb:
                    continue
                self._adjacency[entity.uri].append((relation, target))
                if include_incoming:
                    self._adjacency[target].append((inverse(relation), entity.uri))

    def neighbors(self, uri: str) -> list[tuple[str, str]]:
        """(relation, neighbor URI) pairs of ``uri`` (possibly empty)."""
        return self._adjacency.get(uri, [])

    def neighbors_via(self, uri: str, relations: Iterable[str]) -> list[str]:
        """Neighbor URIs of ``uri`` reachable via any of ``relations``."""
        wanted = set(relations)
        return [
            target
            for relation, target in self._adjacency.get(uri, [])
            if relation in wanted
        ]

    def degree(self, uri: str) -> int:
        """Number of indexed edges at ``uri``."""
        return len(self._adjacency.get(uri, []))

    def edge_count(self) -> int:
        """Total number of indexed (directed) edges."""
        return sum(len(edges) for edges in self._adjacency.values())


def inverse(relation: str) -> str:
    """The direction-tag of a relation name for incoming edges.

    >>> inverse("directed")
    '~directed'
    >>> inverse(inverse("directed"))
    'directed'
    """
    if relation.startswith("~"):
        return relation[1:]
    return "~" + relation
