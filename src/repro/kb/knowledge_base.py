"""The KnowledgeBase container: a keyed collection of entity descriptions.

A :class:`KnowledgeBase` owns the descriptions of one input source (one side
of the ER task) and provides the aggregate views that the MinoanER statistics
need: attribute/relation inventories, entity-frequency of tokens, and the
neighbor graph.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator

from .entity import EntityDescription, Literal, UriRef
from .tokenizer import Tokenizer


class KnowledgeBase:
    """An ordered, URI-keyed collection of :class:`EntityDescription`.

    Parameters
    ----------
    name:
        A human-readable label used in reports (e.g. ``"DBpedia"``).
    entities:
        Initial descriptions; URIs must be unique within the KB.
    """

    def __init__(
        self,
        name: str = "KB",
        entities: Iterable[EntityDescription] = (),
    ) -> None:
        self.name = name
        self._entities: dict[str, EntityDescription] = {}
        self._version = 0
        for entity in entities:
            self.add(entity)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by :meth:`add`/:meth:`remove`).

        Derived structures (session caches, incremental indices, KB
        statistics) record the version they were computed against and
        treat a mismatch as staleness — the invalidation contract that
        makes in-place KB mutation safe to expose.
        """
        return self._version

    def add(self, entity: EntityDescription) -> None:
        """Add a description; raises on duplicate URIs."""
        if entity.uri in self._entities:
            raise ValueError(f"duplicate entity URI: {entity.uri}")
        self._entities[entity.uri] = entity
        self._version += 1

    def remove(self, uri: str) -> EntityDescription:
        """Remove and return the description for ``uri``.

        The remaining descriptions keep their relative order, and a later
        :meth:`add` of the same URI appends at the end — the semantics a
        delta stream needs for order-sensitive consumers (H2/H3 scan
        entities in insertion order).
        """
        entity = self._entities.pop(uri, None)
        if entity is None:
            raise KeyError(f"no entity {uri!r} in KB {self.name!r}")
        self._version += 1
        return entity

    def copy(self, name: str | None = None) -> "KnowledgeBase":
        """A new KB with the same descriptions in the same order.

        Descriptions themselves are shared (they are immutable once
        loaded); only the membership is independent, so deltas applied to
        the copy leave the original untouched.
        """
        return KnowledgeBase(name or self.name, self._entities.values())

    def new_entity(self, uri: str) -> EntityDescription:
        """Create, register and return an empty description for ``uri``."""
        entity = EntityDescription(uri)
        self.add(entity)
        return entity

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[EntityDescription]:
        return iter(self._entities.values())

    def __contains__(self, uri: str) -> bool:
        return uri in self._entities

    def __getitem__(self, uri: str) -> EntityDescription:
        return self._entities[uri]

    def get(self, uri: str) -> EntityDescription | None:
        """The description for ``uri``, or None when absent."""
        return self._entities.get(uri)

    def uris(self) -> list[str]:
        """All entity URIs in insertion order."""
        return list(self._entities)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def n_triples(self) -> int:
        """Total number of attribute-value pairs across all descriptions."""
        return sum(e.n_triples() for e in self._entities.values())

    def attribute_names(self) -> set[str]:
        """Distinct literal-valued attribute names in the KB."""
        names: set[str] = set()
        for entity in self._entities.values():
            names.update(entity.attributes())
        return names

    def relation_names(self) -> set[str]:
        """Distinct URI-valued attribute (relation) names in the KB."""
        names: set[str] = set()
        for entity in self._entities.values():
            names.update(entity.relations())
        return names

    def attribute_support(self) -> Counter[str]:
        """#entities containing each literal-valued attribute."""
        support: Counter[str] = Counter()
        for entity in self._entities.values():
            support.update(entity.attributes())
        return support

    def relation_support(self) -> Counter[str]:
        """#entities containing each relation."""
        support: Counter[str] = Counter()
        for entity in self._entities.values():
            support.update(entity.relations())
        return support

    def entity_frequencies(self, tokenizer: Tokenizer) -> Counter[str]:
        """Entity Frequency EF(t): #entities whose token bag contains t.

        This is the statistic driving the paper's ``valueSim`` weighting —
        the analogue of document frequency with descriptions as documents.
        """
        frequencies: Counter[str] = Counter()
        for entity in self._entities.values():
            frequencies.update(tokenizer.token_set(entity))
        return frequencies

    def average_tokens(self, tokenizer: Tokenizer) -> float:
        """Average token-bag size per description (Table I statistic)."""
        if not self._entities:
            return 0.0
        total = sum(len(tokenizer.tokens(e)) for e in self._entities.values())
        return total / len(self._entities)

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def out_neighbors(self, uri: str) -> list[tuple[str, str]]:
        """(relation, target URI) pairs leaving ``uri``; internal links only."""
        entity = self._entities.get(uri)
        if entity is None:
            return []
        return [
            (relation, target)
            for relation, target in entity.relation_pairs()
            if target in self._entities
        ]

    def filter(
        self, predicate: Callable[[EntityDescription], bool], name: str | None = None
    ) -> "KnowledgeBase":
        """A new KB holding the descriptions satisfying ``predicate``."""
        selected = (e for e in self._entities.values() if predicate(e))
        return KnowledgeBase(name or self.name, selected)

    def __repr__(self) -> str:
        return f"KnowledgeBase({self.name!r}, {len(self)} entities)"


def types_of(entity: EntityDescription, type_attributes: Iterable[str]) -> set[str]:
    """The type values of an entity, looking at the given type attributes.

    RDF data typically stores types under ``rdf:type``; heterogeneous KBs
    may use several attributes.  Both literal and URI-valued type objects
    are returned as strings.
    """
    found: set[str] = set()
    names = set(type_attributes)
    for attribute, value in entity:
        if attribute in names:
            if isinstance(value, Literal):
                found.add(value.value)
            elif isinstance(value, UriRef):
                found.add(value.uri)
    return found
