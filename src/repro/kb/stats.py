"""Dataset statistics in the shape of the paper's Table I.

Given a pair of KBs and a ground truth, :func:`dataset_statistics` computes
the per-KB counters the paper reports: entities, triples, average tokens per
description, distinct attributes/relations/types, and the match count.
"""

from __future__ import annotations

from dataclasses import dataclass

from .knowledge_base import KnowledgeBase, types_of
from .tokenizer import Tokenizer

#: Attribute names commonly carrying type information in Web KBs.
DEFAULT_TYPE_ATTRIBUTES = (
    "rdf:type",
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
    "type",
)


@dataclass(frozen=True)
class KbStatistics:
    """Aggregate counters of one KB (one column-half of Table I)."""

    name: str
    entities: int
    triples: int
    average_tokens: float
    attributes: int
    relations: int
    types: int

    def as_row(self) -> dict[str, object]:
        """Dict view used by report rendering."""
        return {
            "name": self.name,
            "entities": self.entities,
            "triples": self.triples,
            "avg tokens": round(self.average_tokens, 2),
            "attributes": self.attributes,
            "relations": self.relations,
            "types": self.types,
        }


@dataclass(frozen=True)
class DatasetStatistics:
    """Both KBs' statistics plus the ground-truth match count."""

    kb1: KbStatistics
    kb2: KbStatistics
    matches: int


def kb_statistics(
    kb: KnowledgeBase,
    tokenizer: Tokenizer | None = None,
    type_attributes: tuple[str, ...] = DEFAULT_TYPE_ATTRIBUTES,
) -> KbStatistics:
    """Compute the Table I counters for one KB."""
    tokenizer = tokenizer or Tokenizer()
    type_names = set(type_attributes)
    type_values: set[str] = set()
    for entity in kb:
        type_values.update(types_of(entity, type_names))
    # Type attributes are bookkeeping, not content: exclude them from the
    # attribute/relation inventories, as the paper's Table I separates
    # "types" from "attributes"/"relations".
    attributes = kb.attribute_names() - type_names
    relations = kb.relation_names() - type_names
    return KbStatistics(
        name=kb.name,
        entities=len(kb),
        triples=kb.n_triples(),
        average_tokens=kb.average_tokens(tokenizer),
        attributes=len(attributes),
        relations=len(relations),
        types=len(type_values),
    )


def dataset_statistics(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    n_matches: int,
    tokenizer: Tokenizer | None = None,
) -> DatasetStatistics:
    """Compute Table I statistics for a KB pair and its ground truth size."""
    tokenizer = tokenizer or Tokenizer()
    return DatasetStatistics(
        kb1=kb_statistics(kb1, tokenizer),
        kb2=kb_statistics(kb2, tokenizer),
        matches=n_matches,
    )
