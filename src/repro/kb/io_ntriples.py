"""Minimal N-Triples reader/writer.

The paper's benchmark KBs ship as RDF dumps; this module provides a small,
dependency-free N-Triples subset parser sufficient for such data: one triple
per line, ``<uri>`` terms, ``"literal"`` objects with the usual escapes, and
optional ``@lang`` / ``^^<datatype>`` suffixes (which are dropped — MinoanER
is schema-agnostic and treats all literals as plain text).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .entity import EntityDescription, Literal, UriRef
from .knowledge_base import KnowledgeBase

_TRIPLE_PATTERN = re.compile(
    r"""^\s*
        <(?P<subject>[^>]+)>\s+
        <(?P<predicate>[^>]+)>\s+
        (?:
            <(?P<object_uri>[^>]+)>
          | "(?P<object_literal>(?:[^"\\]|\\.)*)"
            (?:@[A-Za-z0-9-]+|\^\^<[^>]+>)?
        )
        \s*\.\s*$
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""

    def __init__(self, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: cannot parse {line!r}")
        self.line_number = line_number
        self.line = line


def _unescape(text: str) -> str:
    if "\\" not in text:
        return text
    out: list[str] = []
    index = 0
    while index < len(text):
        chunk = text[index : index + 2]
        if chunk in _ESCAPES:
            out.append(_ESCAPES[chunk])
            index += 2
        elif chunk[:1] == "\\" and text[index + 1 : index + 2] == "u":
            out.append(chr(int(text[index + 2 : index + 6], 16)))
            index += 6
        else:
            out.append(text[index])
            index += 1
    return "".join(out)


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


def parse_lines(
    lines: Iterable[str], strict: bool = True
) -> Iterator[tuple[str, str, Literal | UriRef]]:
    """Yield (subject, predicate, object) triples from N-Triples lines.

    Blank lines and ``#`` comments are skipped.  Under ``strict`` parsing,
    malformed lines raise :class:`NTriplesError`; otherwise they are
    silently ignored (useful for noisy Web crawls).
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _TRIPLE_PATTERN.match(line)
        if match is None:
            if strict:
                raise NTriplesError(line_number, raw)
            continue
        subject = match.group("subject")
        predicate = match.group("predicate")
        if match.group("object_uri") is not None:
            yield subject, predicate, UriRef(match.group("object_uri"))
        else:
            yield subject, predicate, Literal(_unescape(match.group("object_literal")))


def read_ntriples(
    source: str | Path | TextIO, name: str = "KB", strict: bool = True
) -> KnowledgeBase:
    """Load a KnowledgeBase from an N-Triples file or open text stream.

    Subjects become entity descriptions; triples whose object is a URI that
    never appears as a subject remain URI-valued pairs (they simply have no
    description to point at, which the graph index later ignores).
    """
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            return _read(handle, name, strict)
    return _read(source, name, strict)


def _read(handle: TextIO, name: str, strict: bool) -> KnowledgeBase:
    kb = KnowledgeBase(name)
    for subject, predicate, obj in parse_lines(handle, strict=strict):
        entity = kb.get(subject)
        if entity is None:
            entity = kb.new_entity(subject)
        entity.add(predicate, obj)
    return kb


def write_ntriples(kb: KnowledgeBase, target: str | Path | TextIO) -> None:
    """Serialize a KnowledgeBase as N-Triples (one pair per line)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(kb, handle)
    else:
        _write(kb, target)


def _write(kb: KnowledgeBase, handle: TextIO) -> None:
    for entity in kb:
        for attribute, value in entity:
            if isinstance(value, UriRef):
                obj = f"<{value.uri}>"
            else:
                obj = f'"{_escape(value.value)}"'
            handle.write(f"<{entity.uri}> <{attribute}> {obj} .\n")


def roundtrip(kb: KnowledgeBase, path: str | Path, name: str | None = None) -> KnowledgeBase:
    """Write then re-read a KB; handy for tests and format validation."""
    write_ntriples(kb, path)
    return read_ntriples(path, name or kb.name)
