"""Entity descriptions: the atomic data unit of the Web of Data.

The paper defines an *entity description* as a URI-identifiable set of
attribute-value pairs, where each value is either a literal (a string) or
the URI of another description.  The set of descriptions of a Knowledge
Base therefore forms an *entity graph*: URI-valued attributes are the
edges (we call those attributes *relations*), literal-valued attributes
carry the textual content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Literal:
    """A literal value of an attribute (always stored as a string)."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class UriRef:
    """A reference to another entity description, identified by URI."""

    uri: str

    def __str__(self) -> str:
        return self.uri


Value = Literal | UriRef


def local_name(uri: str) -> str:
    """Return the local name of a URI (the part after the last '/' or '#').

    >>> local_name("http://example.org/resource/Athens")
    'Athens'
    >>> local_name("http://example.org/ns#label")
    'label'
    """
    trimmed = uri.rstrip("/#")
    for separator in ("#", "/", ":"):
        index = trimmed.rfind(separator)
        if index >= 0:
            return trimmed[index + 1 :]
    return trimmed


class EntityDescription:
    """A URI plus a multiset of attribute-value pairs.

    Pairs are kept in insertion order; duplicate (attribute, value) pairs
    are allowed, as in RDF data where a property may be repeated.
    """

    __slots__ = ("uri", "_pairs")

    def __init__(
        self,
        uri: str,
        pairs: Iterable[tuple[str, Value]] = (),
    ) -> None:
        if not uri:
            raise ValueError("an entity description requires a non-empty URI")
        self.uri = uri
        self._pairs: list[tuple[str, Value]] = []
        for attribute, value in pairs:
            self.add(attribute, value)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add(self, attribute: str, value: Value | str) -> None:
        """Append an attribute-value pair.

        Plain strings are treated as literals; to add an entity reference,
        pass a :class:`UriRef` explicitly (or use :meth:`add_relation`).
        """
        if not attribute:
            raise ValueError("attribute names must be non-empty")
        if isinstance(value, str):
            value = Literal(value)
        if not isinstance(value, (Literal, UriRef)):
            raise TypeError(f"unsupported value type: {type(value).__name__}")
        self._pairs.append((attribute, value))

    def add_literal(self, attribute: str, text: str) -> None:
        """Append a literal-valued pair."""
        self.add(attribute, Literal(text))

    def add_relation(self, relation: str, target_uri: str) -> None:
        """Append a URI-valued pair (an edge of the entity graph)."""
        self.add(relation, UriRef(target_uri))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> tuple[tuple[str, Value], ...]:
        """All attribute-value pairs in insertion order."""
        return tuple(self._pairs)

    def attributes(self) -> set[str]:
        """The distinct attribute names of literal-valued pairs."""
        return {a for a, v in self._pairs if isinstance(v, Literal)}

    def relations(self) -> set[str]:
        """The distinct attribute names of URI-valued pairs."""
        return {a for a, v in self._pairs if isinstance(v, UriRef)}

    def literal_pairs(self) -> Iterator[tuple[str, str]]:
        """Yield (attribute, literal text) pairs."""
        for attribute, value in self._pairs:
            if isinstance(value, Literal):
                yield attribute, value.value

    def relation_pairs(self) -> Iterator[tuple[str, str]]:
        """Yield (relation, target URI) pairs."""
        for attribute, value in self._pairs:
            if isinstance(value, UriRef):
                yield attribute, value.uri

    def values_of(self, attribute: str) -> list[Value]:
        """All values recorded for ``attribute`` (may be empty)."""
        return [v for a, v in self._pairs if a == attribute]

    def literals_of(self, attribute: str) -> list[str]:
        """All literal texts recorded for ``attribute``."""
        return [
            v.value for a, v in self._pairs if a == attribute and isinstance(v, Literal)
        ]

    def neighbor_uris(self) -> list[str]:
        """Target URIs of all URI-valued pairs, in order, with duplicates."""
        return [v.uri for _, v in self._pairs if isinstance(v, UriRef)]

    def n_triples(self) -> int:
        """Number of attribute-value pairs (RDF triples with this subject)."""
        return len(self._pairs)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[str, Value]]:
        return iter(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityDescription):
            return NotImplemented
        return self.uri == other.uri and self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self.uri)

    def __repr__(self) -> str:
        return f"EntityDescription({self.uri!r}, {len(self._pairs)} pairs)"
