"""Immutable published read states and the swap-on-publish box.

The daemon's isolation model in two classes:

- A :class:`ServingState` is one *generation* of resolution evidence —
  the packed similarity indices, the decided matches, and the KB
  membership at publish time — frozen forever once constructed.  Every
  read endpoint resolves entirely against one state object, so a
  response can never mix evidence from two generations.
- A :class:`StateBox` holds the single published reference.  Readers do
  exactly one attribute load (atomic under the GIL) to pin a state for
  the whole request; the writer constructs the next state off to the
  side and swaps it in with one attribute store.  No lock appears
  anywhere on the read path.

The writer's obligation is that published objects are never mutated
afterwards: before applying a delta it calls
:meth:`~repro.incremental.IncrementalMatcher.detach_shared_artifacts`,
so in-place index patches land on private clones while the published
state keeps the frozen originals.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from ..core.candidates import ProbeCache, ProbeResult, probe_rows
from ..core.resolve import OnlineResolver, ResolveResult, resolve_cache_key
from ..pipeline.digest import artifact_digest
from ..pipeline.session import PROBE_CACHE_SIZE

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..core.heuristics import Match
    from ..core.neighbors import NeighborSimilarityIndex
    from ..core.similarity import ValueSimilarityIndex
    from ..incremental.matcher import IncrementalMatcher


class ServingState:
    """One published generation of read-only resolution evidence.

    Constructed by the single writer, then only ever read.  Each state
    carries its own bounded probe cache: a new generation starts cold,
    so a stale cached row can never outlive the state it was decoded
    from.  The cache is a :class:`~repro.core.candidates.ProbeCache`
    holding no reference back to the state — a retired generation is
    freed the instant its last reader returns, not at the next garbage
    collection pass.
    """

    __slots__ = (
        "generation",
        "value_index",
        "neighbor_index",
        "matches",
        "decisions1",
        "decisions2",
        "uris1",
        "uris2",
        "config",
        "delta_count",
        "matches_digest",
        "_probe_cache",
        "_resolver",
        "__weakref__",
    )

    def __init__(
        self,
        *,
        generation: int,
        value_index: "ValueSimilarityIndex",
        neighbor_index: "NeighborSimilarityIndex",
        matches: tuple["Match", ...],
        uris1: frozenset[str],
        uris2: frozenset[str],
        config: Any,
        delta_count: int,
        matches_digest: str,
        resolver: Any = None,
    ) -> None:
        self.generation = generation
        self.value_index = value_index
        self.neighbor_index = neighbor_index
        self.matches = matches
        # First-wins maps mirror the greedy matching order: the first
        # decision emitted for an entity is its standing decision.
        decisions1: dict[str, "Match"] = {}
        decisions2: dict[str, "Match"] = {}
        for match in matches:
            decisions1.setdefault(match.uri1, match)
            decisions2.setdefault(match.uri2, match)
        self.decisions1 = decisions1
        self.decisions2 = decisions2
        self.uris1 = uris1
        self.uris2 = uris2
        self.config = config
        self.delta_count = delta_count
        self.matches_digest = matches_digest
        self._probe_cache = ProbeCache(PROBE_CACHE_SIZE)
        self._resolver = resolver

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matcher(
        cls,
        matcher: "IncrementalMatcher",
        *,
        generation: int,
        delta_count: int,
    ) -> "ServingState":
        """Freeze the matcher's current (post-``match()``) evidence.

        The caller must have run :meth:`IncrementalMatcher.match` — the
        state is built from ``last_context``, the same artifact store a
        snapshot would persist, so a state's ``matches_digest`` equals
        the ``matches`` entry of the digests a concurrent
        ``POST /snapshot`` writes.
        """
        ctx = matcher.last_context
        if ctx is None:
            raise RuntimeError(
                "matcher has no completed match(); run it before publishing"
            )
        matches = ctx.get("matches")
        kb1, kb2 = matcher.kbs
        uris1 = frozenset(kb1.uris())
        # The resolver snapshots KB1 membership and builds its derived
        # tables eagerly: once published, a state never reads the live
        # KBs again, so later deltas cannot leak into this generation
        # (and the first /resolve request is already warm).
        resolver = OnlineResolver.from_context(ctx, kb1, kb2, known1=uris1)
        resolver.warm()
        return cls(
            generation=generation,
            value_index=ctx.get("value_index"),
            neighbor_index=ctx.get("neighbor_index"),
            matches=tuple(matches),
            uris1=uris1,
            uris2=frozenset(kb2.uris()),
            config=matcher.config,
            delta_count=delta_count,
            matches_digest=artifact_digest(matches),
            resolver=resolver,
        )

    # ------------------------------------------------------------------
    # Reads (everything an endpoint needs, no mutation anywhere)
    # ------------------------------------------------------------------
    def probe(self, uri: str, k: int | None = None) -> ProbeResult:
        """This generation's :class:`ProbeResult` for one E1 entity."""
        if k is None:
            k = self.config.top_k_candidates
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        result = self._probe_cache.get((uri, k))
        if result is None:
            result = self._probe_uncached(uri, k)
            self._probe_cache.put((uri, k), result)
        return result

    def _probe_uncached(self, uri: str, k: int | None) -> ProbeResult:
        value_rows, neighbor_rows, best = probe_rows(
            self.value_index, self.neighbor_index, uri, k
        )
        return ProbeResult(
            uri=uri,
            known=uri in self.uris1,
            value=value_rows,
            neighbor=neighbor_rows,
            best=best,
            match=self.decisions1.get(uri),
        )

    def resolve(self, record: Any, k: int | None = None) -> ResolveResult:
        """Online resolution of one raw record against this generation.

        Read-only: the resolver's tables were frozen at publish time,
        results land in this state's own probe cache (keyed by the
        record's full content), and nothing else is touched.
        """
        if self._resolver is None:
            raise RuntimeError("this state was published without a resolver")
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        key = resolve_cache_key(record, k)
        result = self._probe_cache.get(key)
        if result is None:
            result = self._resolver.resolve(record, k)
            self._probe_cache.put(key, result)
        return result

    def resolve_batch(
        self, records: list, k: int | None = None
    ) -> list[ResolveResult]:
        """Batch resolution (equals per-record :meth:`resolve` exactly).

        Cached records are served from the probe cache; only the misses
        go through the resolver's amortized batch scorer.
        """
        if self._resolver is None:
            raise RuntimeError("this state was published without a resolver")
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")
        results: list[ResolveResult | None] = [None] * len(records)
        misses: list[int] = []
        miss_keys: list[tuple] = []
        for position, record in enumerate(records):
            key = resolve_cache_key(record, k)
            cached = self._probe_cache.get(key)
            if cached is not None:
                results[position] = cached
            else:
                misses.append(position)
                miss_keys.append(key)
        if misses:
            fresh = self._resolver.resolve_batch(
                [records[position] for position in misses], k
            )
            for position, key, result in zip(misses, miss_keys, fresh):
                results[position] = result
                self._probe_cache.put(key, result)
        return results  # type: ignore[return-value]

    def probe_cache_stats(self) -> dict[str, int]:
        """This generation's probe-cache counters (for ``/metrics``)."""
        return self._probe_cache.stats()

    def decision_of(self, uri: str) -> "Match | None":
        """The standing decision mentioning ``uri`` (either side)."""
        found = self.decisions1.get(uri)
        if found is None:
            found = self.decisions2.get(uri)
        return found

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` payload body (JSON-ready)."""
        by_heuristic: dict[str, int] = {}
        for match in self.matches:
            by_heuristic[match.heuristic] = (
                by_heuristic.get(match.heuristic, 0) + 1
            )
        return {
            "generation": self.generation,
            "entities1": len(self.uris1),
            "entities2": len(self.uris2),
            "matches": len(self.matches),
            "by_heuristic": by_heuristic,
            "delta_count": self.delta_count,
            "matches_digest": self.matches_digest,
        }

    def __repr__(self) -> str:
        return (
            f"ServingState(gen={self.generation}, "
            f"matches={len(self.matches)}, deltas={self.delta_count})"
        )


class StateBox:
    """The single published-state reference (swap-on-publish).

    ``current()`` is one attribute read — atomic under the GIL, so a
    reader pins a fully-constructed state or the previous one, never a
    torn mix.  ``publish()`` is restricted to the daemon's writer path
    (which additionally serializes writers with its own lock); the box
    itself also guards the swap so misuse cannot interleave stores.
    """

    __slots__ = ("_state", "_swap_lock")

    def __init__(self, state: ServingState) -> None:
        self._state = state
        self._swap_lock = threading.Lock()

    def current(self) -> ServingState:
        """The currently published state (lock-free read)."""
        return self._state

    def publish(self, state: ServingState) -> ServingState:
        """Swap ``state`` in; returns the state it replaced."""
        with self._swap_lock:
            previous = self._state
            if state.generation <= previous.generation:
                raise ValueError(
                    f"generation must advance: {previous.generation} -> "
                    f"{state.generation}"
                )
            self._state = state
        return previous

    def __repr__(self) -> str:
        return f"StateBox({self._state!r})"
