"""Endpoint routing and payload builders (pure, state-in → dict-out).

Every read handler takes the :class:`~repro.serve.state.ServingState`
the request pinned and returns a JSON-ready payload; nothing here
touches the daemon, the matcher, or any lock.  That is the isolation
model made syntactic: a handler *cannot* observe two generations,
because it only ever receives one.

Routing is table-free string matching on purpose — six endpoints do not
need a framework, and the absence of one is what keeps the daemon
dependency-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, unquote, urlsplit

if TYPE_CHECKING:  # pragma: no cover - types only
    from .state import ServingState


class RequestError(ValueError):
    """A client error with its HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


#: (method, endpoint name) per fixed path; entity endpoints are prefixes.
_FIXED_GET = {"/healthz": "healthz", "/stats": "stats", "/metrics": "metrics"}
_PREFIX_GET = {"/match/": "match", "/candidates/": "candidates", "/best/": "best"}
_FIXED_POST = {
    "/delta": "delta",
    "/snapshot": "snapshot",
    "/reload": "reload",
    "/resolve": "resolve",
    "/resolve_batch": "resolve_batch",
}


def route(method: str, target: str) -> tuple[str, str | None, dict[str, list[str]]]:
    """Resolve a request line to ``(endpoint, uri, query)``.

    ``uri`` is the percent-decoded entity URI for the per-entity
    endpoints (clients quote it with ``urllib.parse.quote(uri,
    safe="")``), else ``None``.  Raises :class:`RequestError` (404/405)
    for anything off the map.
    """
    split = urlsplit(target)
    path, query = split.path, parse_qs(split.query)
    if method == "GET":
        if path in _FIXED_GET:
            return _FIXED_GET[path], None, query
        for prefix, endpoint in _PREFIX_GET.items():
            if path.startswith(prefix) and len(path) > len(prefix):
                return endpoint, unquote(path[len(prefix):]), query
        if path in _FIXED_POST:
            raise RequestError(405, f"{path} requires POST")
    elif method == "POST":
        if path in _FIXED_POST:
            return _FIXED_POST[path], None, query
        if path in _FIXED_GET or any(
            path.startswith(prefix) for prefix in _PREFIX_GET
        ):
            raise RequestError(405, f"{path} requires GET")
    raise RequestError(404, f"no such endpoint: {method} {path}")


def parse_k(query: dict[str, list[str]]) -> int | None:
    """The ``?k=`` candidate-list bound, validated (None = config's K)."""
    raw = query.get("k")
    if not raw:
        return None
    try:
        k = int(raw[0])
    except ValueError:
        raise RequestError(400, f"k must be an integer, got {raw[0]!r}")
    if k < 1:
        raise RequestError(400, f"k must be >= 1, got {k}")
    return k


# ----------------------------------------------------------------------
# Read-endpoint payloads (one pinned state each)
# ----------------------------------------------------------------------
def _match_dict(match) -> dict[str, Any] | None:
    if match is None:
        return None
    return {
        "uri1": match.uri1,
        "uri2": match.uri2,
        "heuristic": match.heuristic,
        "score": match.score,
    }


def handle_match(state: "ServingState", uri: str) -> dict[str, Any]:
    """``GET /match/<uri>``: membership + the standing decision.

    Looks the URI up on *both* sides, so a KB2 entity answers with the
    decision that claimed it.
    """
    decision = state.decision_of(uri)
    return {
        "uri": uri,
        "generation": state.generation,
        "known": uri in state.uris1 or uri in state.uris2,
        "matched": decision is not None,
        "match": _match_dict(decision),
    }


def handle_candidates(
    state: "ServingState", uri: str, k: int | None
) -> dict[str, Any]:
    """``GET /candidates/<uri>?k=``: the ranked evidence rows."""
    try:
        probe = state.probe(uri, k)
    except ValueError as error:
        raise RequestError(400, str(error))
    payload = probe.as_dict()
    payload["generation"] = state.generation
    payload["k"] = k if k is not None else state.config.top_k_candidates
    return payload


def handle_best(state: "ServingState", uri: str) -> dict[str, Any]:
    """``GET /best/<uri>``: the value index's best counterpart (vmax)."""
    best = state.value_index.best_candidate(uri)
    return {
        "uri": uri,
        "generation": state.generation,
        "known": uri in state.uris1,
        "best": list(best) if best is not None else None,
    }


def handle_resolve(
    state: "ServingState", body: dict[str, Any]
) -> dict[str, Any]:
    """``POST /resolve``: online resolution of one raw record.

    Body: ``{"record": <entity dict>, "k": <optional int>}`` where the
    record uses the delta wire format (``uri`` + ``pairs``).  Entirely
    read-only against the pinned generation — the resolver's tables
    were frozen at publish time.
    """
    from .json_codec import entity_from_dict

    record_dict = body.get("record")
    if not isinstance(record_dict, dict):
        raise RequestError(400, "body must carry a 'record' object")
    record = entity_from_dict(record_dict)
    k = _parse_body_k(body)
    try:
        result = state.resolve(record, k)
    except ValueError as error:
        raise RequestError(400, str(error))
    payload = result.as_dict()
    payload["generation"] = state.generation
    payload["k"] = k if k is not None else state.config.top_k_candidates
    return payload


def handle_resolve_batch(
    state: "ServingState", body: dict[str, Any]
) -> dict[str, Any]:
    """``POST /resolve_batch``: many records, one amortized pass.

    Body: ``{"records": [<entity dict>, ...], "k": <optional int>}``.
    The results list preserves request order and equals per-record
    ``POST /resolve`` calls exactly.
    """
    from .json_codec import entity_from_dict

    record_dicts = body.get("records")
    if not isinstance(record_dicts, list):
        raise RequestError(400, "body must carry a 'records' list")
    records = [entity_from_dict(entry) for entry in record_dicts]
    k = _parse_body_k(body)
    try:
        results = state.resolve_batch(records, k)
    except ValueError as error:
        raise RequestError(400, str(error))
    return {
        "generation": state.generation,
        "k": k if k is not None else state.config.top_k_candidates,
        "results": [result.as_dict() for result in results],
    }


def _parse_body_k(body: dict[str, Any]) -> int | None:
    k = body.get("k")
    if k is None:
        return None
    if not isinstance(k, int) or isinstance(k, bool):
        raise RequestError(400, f"k must be an integer, got {k!r}")
    if k < 1:
        raise RequestError(400, f"k must be >= 1, got {k}")
    return k


def handle_stats(state: "ServingState") -> dict[str, Any]:
    """``GET /stats``: the generation's aggregate view."""
    return state.stats()


def handle_healthz(state: "ServingState") -> dict[str, Any]:
    """``GET /healthz``: liveness plus the published generation."""
    return {"status": "ok", "generation": state.generation}
