"""The daemon's JSON request grammar (deltas in, validation errors out).

A ``POST /delta`` body carries an ordered batch of add/remove
operations — the same operations the CLI's ``--apply-delta`` specs
express, with entity descriptions in the :mod:`repro.kb.io_json`
format::

    {
      "ops": [
        {"op": "add", "kb": "kb1", "entities": [
            {"uri": "http://ex/e1",
             "pairs": [["name", {"lit": "An Entity"}],
                        ["linked", {"ref": "http://ex/e2"}]]}
        ]},
        {"op": "remove", "kb": "kb2", "uris": ["http://ex/gone"]}
      ]
    }

Parsing is strict and total: every structural problem raises
:class:`DeltaFormatError` (the daemon's 400) before any operation is
considered, so a malformed batch can never be half-understood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kb.entity import EntityDescription, Literal, UriRef


class DeltaFormatError(ValueError):
    """A delta payload that does not follow the grammar above."""


@dataclass(frozen=True)
class DeltaOp:
    """One parsed operation of a delta batch."""

    op: str  # "add" | "remove"
    kb: str  # "kb1" | "kb2"
    entities: tuple[EntityDescription, ...] = field(default=())
    uris: tuple[str, ...] = field(default=())

    @property
    def count(self) -> int:
        return len(self.entities) if self.op == "add" else len(self.uris)


def entity_from_dict(record: Any) -> EntityDescription:
    """Decode one :func:`repro.kb.io_json.kb_to_dict` entity record."""
    if not isinstance(record, dict) or not isinstance(record.get("uri"), str):
        raise DeltaFormatError(
            f"entity record must be an object with a string 'uri': {record!r}"
        )
    entity = EntityDescription(record["uri"])
    pairs = record.get("pairs", [])
    if not isinstance(pairs, list):
        raise DeltaFormatError(
            f"'pairs' of {record['uri']!r} must be a list"
        )
    for pair in pairs:
        if not (
            isinstance(pair, (list, tuple))
            and len(pair) == 2
            and isinstance(pair[0], str)
            and isinstance(pair[1], dict)
        ):
            raise DeltaFormatError(
                f"malformed pair for {record['uri']!r}: {pair!r} "
                "(expected [attribute, {'lit': ...} | {'ref': ...}])"
            )
        attribute, boxed = pair
        if "ref" in boxed:
            entity.add(attribute, UriRef(boxed["ref"]))
        elif "lit" in boxed:
            entity.add(attribute, Literal(boxed["lit"]))
        else:
            raise DeltaFormatError(
                f"malformed value box for {record['uri']!r}: {boxed!r}"
            )
    return entity


def entity_to_dict(entity: EntityDescription) -> dict:
    """Encode one entity back into the request grammar above.

    The exact inverse of :func:`entity_from_dict` — the write-ahead log
    stores operation batches in the wire format, so programmatic
    ``apply_delta`` callers (no HTTP body to reuse) need this to produce
    replayable records.
    """
    pairs = []
    for attribute, value in entity:
        box = (
            {"ref": str(value)}
            if isinstance(value, UriRef)
            else {"lit": str(value)}
        )
        pairs.append([attribute, box])
    return {"uri": entity.uri, "pairs": pairs}


def delta_to_payload(ops: tuple[DeltaOp, ...]) -> list[dict]:
    """Encode parsed operations back into a JSON ``ops`` list.

    Round-trips through :func:`parse_delta` bit-identically: the WAL
    relies on ``parse_delta({"ops": delta_to_payload(ops)}) == ops``.
    """
    payload: list[dict] = []
    for op in ops:
        if op.op == "add":
            payload.append(
                {
                    "op": "add",
                    "kb": op.kb,
                    "entities": [
                        entity_to_dict(entity) for entity in op.entities
                    ],
                }
            )
        else:
            payload.append(
                {"op": "remove", "kb": op.kb, "uris": list(op.uris)}
            )
    return payload


_KB_NAMES = ("kb1", "kb2", "1", "2")


def parse_delta(payload: Any) -> tuple[DeltaOp, ...]:
    """Parse and validate a full ``POST /delta`` body."""
    if not isinstance(payload, dict):
        raise DeltaFormatError("delta payload must be a JSON object")
    ops = payload.get("ops")
    if not isinstance(ops, list) or not ops:
        raise DeltaFormatError(
            "delta payload needs a non-empty 'ops' list"
        )
    parsed: list[DeltaOp] = []
    for index, op in enumerate(ops):
        if not isinstance(op, dict):
            raise DeltaFormatError(f"ops[{index}] must be an object")
        kind = op.get("op")
        if kind not in ("add", "remove"):
            raise DeltaFormatError(
                f"ops[{index}].op must be 'add' or 'remove', got {kind!r}"
            )
        kb = op.get("kb")
        if not isinstance(kb, str) or kb.lower() not in _KB_NAMES:
            raise DeltaFormatError(
                f"ops[{index}].kb must be 'kb1' or 'kb2', got {kb!r}"
            )
        kb = "kb1" if kb.lower() in ("kb1", "1") else "kb2"
        if kind == "add":
            records = op.get("entities")
            if not isinstance(records, list) or not records:
                raise DeltaFormatError(
                    f"ops[{index}] (add) needs a non-empty 'entities' list"
                )
            parsed.append(
                DeltaOp(
                    op="add",
                    kb=kb,
                    entities=tuple(
                        entity_from_dict(record) for record in records
                    ),
                )
            )
        else:
            uris = op.get("uris")
            if (
                not isinstance(uris, list)
                or not uris
                or not all(isinstance(uri, str) for uri in uris)
            ):
                raise DeltaFormatError(
                    f"ops[{index}] (remove) needs a non-empty list of "
                    "string 'uris'"
                )
            parsed.append(DeltaOp(op="remove", kb=kb, uris=tuple(uris)))
    return tuple(parsed)


def validate_against_membership(
    ops: tuple[DeltaOp, ...],
    uris1: frozenset[str] | set[str],
    uris2: frozenset[str] | set[str],
) -> None:
    """Reject a batch that could fail mid-application.

    Walks the operations over simulated membership sets — the
    all-or-nothing guarantee of ``POST /delta``: either every operation
    is applicable in order, or nothing is applied at all.  (The matcher
    validates each *single* batch before mutating; this extends the
    property across the whole request.)
    """
    members = {"kb1": set(uris1), "kb2": set(uris2)}
    for index, op in enumerate(ops):
        side = members[op.kb]
        if op.op == "add":
            seen: set[str] = set()
            for entity in op.entities:
                if entity.uri in side or entity.uri in seen:
                    raise DeltaFormatError(
                        f"ops[{index}] (add): URI already present in "
                        f"{op.kb}: {entity.uri!r}"
                    )
                seen.add(entity.uri)
            side.update(seen)
        else:
            seen = set()
            for uri in op.uris:
                if uri not in side or uri in seen:
                    raise DeltaFormatError(
                        f"ops[{index}] (remove): URI missing from "
                        f"{op.kb} (or repeated): {uri!r}"
                    )
                seen.add(uri)
            side.difference_update(seen)
