"""Matching-as-a-service: the snapshot-backed resolution daemon.

The serving subsystem turns a saved ``repro-snapshot/1`` directory into
a long-running HTTP daemon: concurrent readers resolve entities against
an immutable published :class:`ServingState` (one atomic reference read
per request — swap-on-publish isolation), while the single writer feeds
deltas through :class:`repro.incremental.IncrementalMatcher` and
publishes each new generation atomically.

Start it from the CLI (``repro-er serve --snapshot DIR --port 8750``)
or programmatically::

    from repro.serve import ResolutionDaemon, build_server, run

    daemon = ResolutionDaemon.from_snapshot("snapshot-dir")
    server = build_server(daemon, port=8750)
    run(daemon, server)      # blocks; SIGTERM drains and saves

See ``docs/SERVING.md`` for the endpoint reference and the isolation
model.
"""

from .app import (
    MAX_SPAN_RECORDS,
    ResolutionDaemon,
    ServeHTTPServer,
    build_server,
    install_signal_handlers,
    run,
)
from .client import ServeClient, ServeClientError
from .json_codec import DeltaFormatError, DeltaOp, delta_to_payload, parse_delta
from .state import ServingState, StateBox
from .wal import WAL_NAME, WAL_SCHEMA, WalError, WriteAheadLog

__all__ = [
    "MAX_SPAN_RECORDS",
    "ResolutionDaemon",
    "ServeHTTPServer",
    "ServeClient",
    "ServeClientError",
    "ServingState",
    "StateBox",
    "DeltaFormatError",
    "DeltaOp",
    "WAL_NAME",
    "WAL_SCHEMA",
    "WalError",
    "WriteAheadLog",
    "build_server",
    "delta_to_payload",
    "install_signal_handlers",
    "parse_delta",
    "run",
]
