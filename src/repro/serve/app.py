"""The resolution daemon: one writer, many readers, swap-on-publish.

:class:`ResolutionDaemon` owns an :class:`IncrementalMatcher` (loaded
from a ``repro-snapshot/1`` directory) and a :class:`StateBox` holding
the published :class:`ServingState`.  The request flow:

- **Reads** (``/match``, ``/candidates``, ``/best``, ``/resolve``,
  ``/resolve_batch``, ``/stats``, ``/healthz``, ``/metrics``) pin the
  published state with one atomic reference load and answer entirely
  from it — no lock, no matcher.
- **Writes** (``/delta``) and **admin** (``/snapshot``, ``/reload``)
  serialize on the writer lock.  A delta first detaches the matcher
  from the published state's indices
  (:meth:`IncrementalMatcher.detach_shared_artifacts` — copy-on-write,
  CSR columns stay shared), applies the batch, re-matches, and
  publishes the next generation.  Readers mid-request keep the old
  state; readers arriving after the swap see the new one; nobody sees
  a mix.

The HTTP layer is ``http.server.ThreadingHTTPServer`` with non-daemon
request threads, so ``shutdown()`` (the SIGTERM path) drains in-flight
requests before ``server_close()`` returns — graceful by construction.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..incremental import IncrementalMatcher
from ..obs import Telemetry, prometheus_text
from ..testing.failpoints import failpoint
from . import handlers
from .json_codec import (
    DeltaFormatError,
    DeltaOp,
    delta_to_payload,
    parse_delta,
    validate_against_membership,
)
from .state import ServingState, StateBox
from .wal import WAL_NAME, WalError, WriteAheadLog

log = logging.getLogger("repro.serve")

#: Span-record retention of the daemon's telemetry: enough to inspect
#: recent traffic, bounded so an unbounded request stream cannot grow
#: memory (see docs/OBSERVABILITY.md).
MAX_SPAN_RECORDS = 4096


class ResolutionDaemon:
    """The serving core (HTTP-agnostic; the handler class drives it)."""

    def __init__(
        self,
        matcher: IncrementalMatcher,
        *,
        snapshot_source: str | Path | None = None,
        snapshot_dir: str | Path | None = None,
        auto_snapshot_every: int = 0,
        telemetry: Telemetry | None = None,
        load_mode: str = "copy",
        wal_dir: str | Path | None = None,
    ) -> None:
        if auto_snapshot_every < 0:
            raise ValueError("auto_snapshot_every must be >= 0")
        self.telemetry = telemetry or Telemetry.create(
            max_span_records=MAX_SPAN_RECORDS
        )
        # The matcher's own runs (bootstrap re-match, delta matches)
        # record into the daemon's telemetry: one registry to scrape.
        matcher.telemetry = self.telemetry
        self._matcher = matcher
        if matcher.last_context is None:
            with self._span("bootstrap_match", category="run"):
                matcher.match()
        self._box = StateBox(
            ServingState.from_matcher(matcher, generation=1, delta_count=0)
        )
        self._writer_lock = threading.RLock()
        self.snapshot_source = (
            Path(snapshot_source) if snapshot_source is not None else None
        )
        if snapshot_dir is not None:
            self._snapshot_dir = Path(snapshot_dir)
        elif self.snapshot_source is not None:
            self._snapshot_dir = self.snapshot_source.parent
        else:
            self._snapshot_dir = Path(".")
        #: Snapshot load mode (``copy`` or ``mmap``) used at boot and
        #: reused by every ``reload()``.
        self.load_mode = load_mode
        self.auto_snapshot_every = auto_snapshot_every
        #: Delta requests applied since the last snapshot (the
        #: ``--auto-snapshot-every`` counter — deterministic, unlike a
        #: wall-clock period).
        self.deltas_since_snapshot = 0
        #: Whether published state is newer than the last snapshot.
        self.dirty = False
        self.last_snapshot_path: Path | None = None
        #: The write-ahead delta log, when durability is enabled via
        #: ``wal_dir``.  Opening it replays any batches the previous
        #: process acknowledged (or had in flight) after its last
        #: snapshot — see :mod:`repro.serve.wal`.
        self.wal: WriteAheadLog | None = None
        if wal_dir is not None:
            self.wal = WriteAheadLog(Path(wal_dir) / WAL_NAME)
            self._replay_wal()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        *,
        engine: str | None = None,
        workers: int | None = None,
        snapshot_dir: str | Path | None = None,
        auto_snapshot_every: int = 0,
        telemetry: Telemetry | None = None,
        mode: str = "copy",
        wal_dir: str | Path | None = None,
    ) -> "ResolutionDaemon":
        """A daemon warm-started from a ``repro-snapshot/1`` directory.

        ``mode="mmap"`` maps the snapshot's columns instead of copying
        them — near-instant boot; see :meth:`Snapshot.load`.
        ``wal_dir`` enables the write-ahead delta log (and replays any
        unsnapshotted batches found there before serving).
        """
        matcher = IncrementalMatcher.from_snapshot(
            path, engine=engine, workers=workers, mode=mode
        )
        return cls(
            matcher,
            snapshot_source=path,
            snapshot_dir=snapshot_dir,
            auto_snapshot_every=auto_snapshot_every,
            telemetry=telemetry,
            load_mode=mode,
            wal_dir=wal_dir,
        )

    def _span(self, name: str, category: str = "request", args=None):
        return self.telemetry.tracer.span(name, category=category, args=args)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def state(self) -> ServingState:
        """Pin the published state (the one atomic read)."""
        return self._box.current()

    def metrics_text(self) -> str:
        """The ``GET /metrics`` Prometheus exposition.

        Probe-cache effectiveness gauges are sampled from the published
        generation's cache at scrape time — counters live on the cache
        (not the registry) so the hot read path never pays for a second
        increment.
        """
        cache_stats = self.state().probe_cache_stats()
        gauges = self.telemetry.metrics
        gauges.gauge("serve.probe_cache_hits").set(cache_stats["hits"])
        gauges.gauge("serve.probe_cache_misses").set(cache_stats["misses"])
        gauges.gauge("serve.probe_cache_evictions").set(
            cache_stats["evictions"]
        )
        gauges.gauge("serve.probe_cache_size").set(cache_stats["size"])
        return prometheus_text(self.telemetry)

    # ------------------------------------------------------------------
    # Write side (single writer; every path below takes the lock)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        ops: tuple[DeltaOp, ...],
        raw_ops: list[dict] | None = None,
    ) -> dict[str, Any]:
        """Apply one all-or-nothing delta batch and publish the result.

        With a WAL enabled, the validated batch is durably logged (in
        the wire grammar — ``raw_ops`` when the HTTP handler already has
        it, re-encoded otherwise) *before* the matcher mutates anything,
        and the new generation's digest is logged after it publishes.
        """
        with self._writer_lock:
            state = self._box.current()
            # All-or-nothing: walk the batch over simulated membership
            # before the matcher mutates anything.
            validate_against_membership(ops, state.uris1, state.uris2)
            if self.wal is not None:
                self.wal.log_delta(
                    raw_ops if raw_ops is not None else delta_to_payload(ops),
                    state.generation + 1,
                )
            # A SIGKILL here (the armed-failpoint case) loses nothing:
            # the delta is on disk and boot replays it.
            failpoint("serve.apply_delta")
            payload = self._apply_validated(ops, state)
            if self.wal is not None:
                self.wal.log_commit(
                    payload["generation"], payload["matches_digest"]
                )
            if (
                self.auto_snapshot_every
                and self.deltas_since_snapshot >= self.auto_snapshot_every
            ):
                payload["snapshot"] = str(self.save_snapshot())
            return payload

    def _apply_validated(
        self, ops: tuple[DeltaOp, ...], state: ServingState
    ) -> dict[str, Any]:
        """Apply a membership-validated batch against ``state``.

        The shared core of live applies and WAL replay — no logging, no
        auto-snapshot, so replay can never re-log what it is replaying.
        Caller holds the writer lock and passes the pinned state.
        """
        # Copy-on-write epoch: the published state's indices must
        # never see the in-place patches the refresh applies.
        self._matcher.detach_shared_artifacts()
        added = removed = 0
        for op in ops:
            if op.op == "add":
                added += self._matcher.add_entities(op.kb, op.entities)
            else:
                removed += self._matcher.remove_entities(op.kb, op.uris)
        result = self._matcher.match()  # records into self.telemetry
        new_state = ServingState.from_matcher(
            self._matcher,
            generation=state.generation + 1,
            delta_count=state.delta_count + len(ops),
        )
        self._box.publish(new_state)
        self.dirty = True
        self.deltas_since_snapshot += 1
        self.telemetry.metrics.counter("serve.delta_applied").inc()
        return {
            "generation": new_state.generation,
            "ops": len(ops),
            "added": added,
            "removed": removed,
            "matches": len(result.matches),
            "matches_digest": new_state.matches_digest,
        }

    def _replay_wal(self) -> None:
        """Re-apply every recovered WAL batch against the boot state.

        Each ``delta`` record was validated and durably logged by the
        previous process after its last snapshot, so replaying them in
        order reconverges deterministically; ``commit`` records pin the
        generation digests the original run produced, turning "should
        be deterministic" into a checked invariant.  Divergence raises
        :class:`WalError` — refusing to serve is strictly better than
        serving silently different matches.
        """
        assert self.wal is not None
        if self.wal.torn_dropped:
            self.telemetry.metrics.counter("serve.wal_torn_dropped").inc(
                self.wal.torn_dropped
            )
            log.warning(
                "%s: dropped a torn trailing record", self.wal.path
            )
        replayed = 0
        last_payload: dict[str, Any] | None = None
        for index, record in enumerate(self.wal.recovered):
            kind = record.get("type")
            if kind == "delta":
                ops = parse_delta({"ops": record.get("ops")})
                with self._writer_lock:
                    state = self._box.current()
                    validate_against_membership(
                        ops, state.uris1, state.uris2
                    )
                    last_payload = self._apply_validated(ops, state)
                expected = record.get("expected_generation")
                if expected is not None and expected != last_payload["generation"]:
                    raise WalError(
                        f"{self.wal.path}: record {index + 1} replayed to "
                        f"generation {last_payload['generation']}, log "
                        f"expected {expected}"
                    )
                replayed += 1
            elif kind == "commit":
                if last_payload is None or record.get("generation") != (
                    last_payload["generation"]
                ):
                    raise WalError(
                        f"{self.wal.path}: record {index + 1} commits "
                        f"generation {record.get('generation')!r} out of "
                        "order"
                    )
                if record.get("matches_digest") != last_payload["matches_digest"]:
                    raise WalError(
                        f"{self.wal.path}: replay of generation "
                        f"{last_payload['generation']} diverged from the "
                        "logged matches digest"
                    )
            else:
                raise WalError(
                    f"{self.wal.path}: record {index + 1} has unknown "
                    f"type {kind!r}"
                )
        if replayed:
            self.telemetry.metrics.counter("serve.wal_replayed").inc(
                replayed
            )
            log.info(
                "replayed %d WAL delta batch(es); now at generation %d",
                replayed,
                self._box.current().generation,
            )

    def save_snapshot(self, path: str | Path | None = None) -> Path:
        """Persist the current state to a digest-pinned directory.

        The default directory name carries the generation and the first
        12 hex digits of the matches digest —
        ``snap-g<generation>-<digest12>`` under the daemon's snapshot
        directory — so distinct states can never silently overwrite
        each other.
        """
        with self._writer_lock:
            state = self._box.current()
            if path is None:
                path = self._snapshot_dir / (
                    f"snap-g{state.generation}-{state.matches_digest[:12]}"
                )
            target = self._matcher.save(Path(path))
            self.dirty = False
            self.deltas_since_snapshot = 0
            self.last_snapshot_path = Path(target)
            if self.wal is not None:
                # The snapshot now owns everything the log held.
                self.wal.reset()
            self.telemetry.metrics.counter("serve.snapshots_saved").inc()
            log.info("snapshot saved to %s", target)
            return Path(target)

    def reload(self, path: str | Path | None = None) -> dict[str, Any]:
        """Replace the matcher and published state from a snapshot.

        ``path`` defaults to the most recent ``save_snapshot`` target,
        falling back to the directory the daemon started from.  The
        generation keeps advancing (a reload is a publish like any
        other), so readers still observe a strictly monotone sequence.
        """
        with self._writer_lock:
            if path is None:
                path = self.last_snapshot_path or self.snapshot_source
            if path is None:
                raise DeltaFormatError(
                    "no snapshot path: pass one, or save a snapshot first"
                )
            matcher = IncrementalMatcher.from_snapshot(
                path,
                engine=self._matcher.config.engine,
                workers=self._matcher.config.workers,
                mode=self.load_mode,
            )
            matcher.telemetry = self.telemetry
            with self._span("reload_match", category="run"):
                matcher.match()
            state = self._box.current()
            new_state = ServingState.from_matcher(
                matcher, generation=state.generation + 1, delta_count=0
            )
            self._matcher = matcher
            self._box.publish(new_state)
            self.dirty = False
            self.deltas_since_snapshot = 0
            if self.wal is not None:
                # Logged batches predate the reloaded snapshot; replaying
                # them against it would be wrong, so the log restarts.
                self.wal.reset()
            self.telemetry.metrics.counter("serve.reloads").inc()
            log.info("reloaded from %s (generation %d)", path, new_state.generation)
            return {
                "generation": new_state.generation,
                "snapshot": str(path),
                "matches": len(new_state.matches),
                "matches_digest": new_state.matches_digest,
            }

    def drain_save(self) -> Path | None:
        """The SIGTERM epilogue: snapshot unsaved state, if configured."""
        if self.dirty and self.auto_snapshot_every:
            return self.save_snapshot()
        return None

    def robustness_stats(self) -> dict[str, Any]:
        """Fault-tolerance counters for the ``/stats`` payload.

        Engine recovery counters accumulate in the daemon's telemetry
        because the matcher's executors run under it; zeros mean no
        faults were survived (the healthy steady state).
        """
        counters = self.telemetry.metrics.counters()
        return {
            "worker_retries": counters.get("engine.worker_retries", 0),
            "pool_rebuilds": counters.get("engine.pool_rebuilds", 0),
            "degraded_dispatches": counters.get(
                "engine.degraded_dispatches", 0
            ),
            "wal_enabled": self.wal is not None,
            "wal_replayed": counters.get("serve.wal_replayed", 0),
            "wal_torn_dropped": counters.get("serve.wal_torn_dropped", 0),
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class ServeHTTPServer(ThreadingHTTPServer):
    """Threading server that drains request threads on close.

    ``daemon_threads = False`` (unlike stock ``ThreadingHTTPServer``)
    makes ``server_close()`` join every in-flight request — the "drain"
    half of graceful shutdown.  Nagle is disabled on accepted sockets:
    responses flush in two writes (headers, body), and a latency
    daemon should not trade sub-millisecond probes for coalescing.
    """

    daemon_threads = False
    allow_reuse_address = True
    disable_nagle_algorithm = True


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes requests into the daemon; one instance per request."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    daemon: ResolutionDaemon  # set on the subclass build_server creates
    #: Request body cap: a delta batch measured in tens of MiB is a
    #: bulk load, which belongs in the batch CLI, not an HTTP POST.
    max_body_bytes = 64 * 1024 * 1024

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        daemon = self.daemon
        metrics = daemon.telemetry.metrics
        endpoint = "unrouted"
        try:
            endpoint, uri, query = handlers.route(method, self.path)
        except handlers.RequestError as error:
            metrics.counter("serve.requests").inc()
            self._send_error(error.status, str(error))
            return
        metrics.counter("serve.requests").inc()
        metrics.counter(f"serve.requests.{endpoint}").inc()
        with daemon._span(
            f"http:{endpoint}", args={"method": method}
        ) as span:
            try:
                status, payload = self._dispatch(endpoint, uri, query)
            except handlers.RequestError as error:
                span.set(status=error.status)
                self._send_error(error.status, str(error))
                return
            except DeltaFormatError as error:
                span.set(status=400)
                self._send_error(400, str(error))
                return
            except Exception:  # noqa: BLE001 - the 500 boundary
                log.exception("unhandled error on %s %s", method, self.path)
                span.set(status=500)
                self._send_error(500, "internal error (see daemon log)")
                return
            span.set(status=status)
        metrics.histogram(f"serve.latency_seconds.{endpoint}").observe(
            span.seconds
        )
        if endpoint == "metrics":
            self._send_text(status, payload)
        else:
            self._send_json(status, payload)

    def _dispatch(
        self, endpoint: str, uri: str | None, query: dict
    ) -> tuple[int, Any]:
        daemon = self.daemon
        # Read endpoints pin ONE state here and never look again.
        if endpoint == "healthz":
            return 200, handlers.handle_healthz(daemon.state())
        if endpoint == "stats":
            payload = handlers.handle_stats(daemon.state())
            payload["robustness"] = daemon.robustness_stats()
            return 200, payload
        if endpoint == "metrics":
            return 200, daemon.metrics_text()
        if endpoint == "match":
            return 200, handlers.handle_match(daemon.state(), uri)
        if endpoint == "candidates":
            k = handlers.parse_k(query)
            return 200, handlers.handle_candidates(daemon.state(), uri, k)
        if endpoint == "best":
            return 200, handlers.handle_best(daemon.state(), uri)
        if endpoint == "resolve":
            body = self._read_json_body()
            if not isinstance(body, dict):
                raise handlers.RequestError(400, "body must be a JSON object")
            payload = handlers.handle_resolve(daemon.state(), body)
            self._count_resolved((payload,))
            return 200, payload
        if endpoint == "resolve_batch":
            body = self._read_json_body()
            if not isinstance(body, dict):
                raise handlers.RequestError(400, "body must be a JSON object")
            payload = handlers.handle_resolve_batch(daemon.state(), body)
            self._count_resolved(payload["results"])
            return 200, payload
        if endpoint == "delta":
            body = self._read_json_body()
            ops = parse_delta(body)
            # Hand the WAL the exact wire-format ops we just validated —
            # no re-encoding on the hot write path.
            return 200, daemon.apply_delta(ops, raw_ops=body["ops"])
        if endpoint == "snapshot":
            body = self._read_json_body(optional=True) or {}
            path = daemon.save_snapshot(body.get("path"))
            state = daemon.state()
            return 200, {
                "snapshot": str(path),
                "generation": state.generation,
                "matches_digest": state.matches_digest,
            }
        if endpoint == "reload":
            body = self._read_json_body(optional=True) or {}
            return 200, daemon.reload(body.get("path"))
        raise handlers.RequestError(404, f"no such endpoint: {endpoint}")

    def _count_resolved(self, results) -> None:
        """Per-record resolve counters (records, known/unknown split)."""
        metrics = self.daemon.telemetry.metrics
        known = sum(1 for result in results if result["known"])
        metrics.counter("serve.resolve_records").inc(len(results))
        if known:
            metrics.counter("serve.resolve_known").inc(known)
        if len(results) - known:
            metrics.counter("serve.resolve_unknown").inc(len(results) - known)
        matched = sum(1 for result in results if result["match"] is not None)
        if matched:
            metrics.counter("serve.resolve_matched").inc(matched)

    # ------------------------------------------------------------------
    # Body / response plumbing
    # ------------------------------------------------------------------
    def _read_json_body(self, optional: bool = False) -> Any:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            length = 0
        else:
            # A malformed header is the client's error (400), not an
            # unhandled ValueError escalating to the 500 boundary; a
            # negative length must never reach rfile.read().
            try:
                length = int(raw_length.strip())
            except ValueError:
                raise handlers.RequestError(
                    400, f"invalid Content-Length: {raw_length!r}"
                ) from None
            if length < 0:
                raise handlers.RequestError(
                    400, f"invalid Content-Length: {raw_length!r}"
                )
        if length == 0:
            if optional:
                return None
            raise handlers.RequestError(400, "request body required")
        if length > self.max_body_bytes:
            raise handlers.RequestError(
                413, f"body exceeds {self.max_body_bytes} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise handlers.RequestError(400, f"invalid JSON body: {error}")

    def _send_json(self, status: int, payload: Any) -> None:
        # Compact separators: batch resolve responses run to ~100KB,
        # and the whitespace is pure encode/transfer/decode overhead.
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), "text/plain; version=0.0.4"
        )

    def _send_error(self, status: int, message: str) -> None:
        self.daemon.telemetry.metrics.counter("serve.errors").inc()
        body = json.dumps({"error": message, "status": status}).encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("%s - %s", self.address_string(), format % args)


def build_server(
    daemon: ResolutionDaemon,
    host: str = "127.0.0.1",
    port: int = 8750,
    max_body_bytes: int | None = None,
) -> ServeHTTPServer:
    """An HTTP server bound to ``host:port`` and wired to ``daemon``.

    ``port=0`` binds an ephemeral port (tests); read the actual one
    from ``server.server_address``.  The request-body cap defaults to
    the handler's 64 MiB and can be overridden per server or via the
    ``REPRO_MAX_BODY_BYTES`` environment variable.
    """
    if max_body_bytes is None:
        max_body_bytes = int(
            os.environ.get(
                "REPRO_MAX_BODY_BYTES", _RequestHandler.max_body_bytes
            )
        )
    handler = type(
        "BoundRequestHandler",
        (_RequestHandler,),
        {"daemon": daemon, "max_body_bytes": max_body_bytes},
    )
    return ServeHTTPServer((host, port), handler)


def install_signal_handlers(server: ServeHTTPServer) -> None:
    """SIGTERM/SIGINT → ``server.shutdown()`` from a side thread.

    ``shutdown()`` blocks until ``serve_forever`` exits, so it must not
    run on the signal-handling (main) thread itself.
    """

    def _initiate(signum: int, frame: Any) -> None:
        log.info("signal %d: draining and shutting down", signum)
        threading.Thread(
            target=server.shutdown, name="serve-shutdown", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _initiate)
    signal.signal(signal.SIGINT, _initiate)


def run(daemon: ResolutionDaemon, server: ServeHTTPServer) -> None:
    """Serve until shutdown, then drain in-flight requests and save.

    The epilogue order is the graceful-SIGTERM contract: stop accepting
    (``serve_forever`` returned), join every request thread
    (``server_close`` — non-daemon threads), then write the final
    auto-snapshot if unsaved deltas remain.
    """
    host, port = server.server_address[:2]
    log.info("serving on http://%s:%d (generation %d)",
             host, port, daemon.state().generation)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        saved = daemon.drain_save()
        if saved is not None:
            log.info("final snapshot saved to %s", saved)
        if daemon.wal is not None:
            daemon.wal.close()
