"""A minimal stdlib client for the resolution daemon.

Used by the isolation tests, the serving benchmark and the CI smoke
job; equally usable interactively::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8750")
    client.healthz()                      # {'status': 'ok', 'generation': 1}
    client.candidates("http://ex/e1", k=5)
    client.apply_delta({"ops": [
        {"op": "remove", "kb": "kb1", "uris": ["http://ex/e1"]},
    ]})
    client.snapshot()

Entity URIs are percent-quoted into the path (``quote(uri, safe="")``),
matching the daemon's routing.  Error responses raise
:class:`ServeClientError` carrying the HTTP status and the decoded
``error`` message.
"""

from __future__ import annotations

import json
from typing import Any
from urllib.error import HTTPError, URLError
from urllib.parse import quote, urlencode
from urllib.request import Request, urlopen


class ServeClientError(RuntimeError):
    """A non-2xx daemon response (or no response at all)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Typed wrappers over the daemon's endpoints, one method each."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, str, str]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return (
                    response.status,
                    response.read().decode("utf-8"),
                    response.headers.get("Content-Type", ""),
                )
        except HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except (json.JSONDecodeError, AttributeError):
                message = raw
            raise ServeClientError(error.code, message) from None
        except URLError as error:
            raise ServeClientError(0, f"daemon unreachable: {error.reason}")

    def _json(self, method: str, path: str, payload: Any | None = None) -> Any:
        _, body, _ = self._request(method, path, payload)
        return json.loads(body)

    @staticmethod
    def _entity_path(prefix: str, uri: str) -> str:
        return f"{prefix}/{quote(uri, safe='')}"

    # ------------------------------------------------------------------
    # Read endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._json("GET", "/stats")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        _, body, _ = self._request("GET", "/metrics")
        return body

    def match(self, uri: str) -> dict[str, Any]:
        return self._json("GET", self._entity_path("/match", uri))

    def candidates(self, uri: str, k: int | None = None) -> dict[str, Any]:
        path = self._entity_path("/candidates", uri)
        if k is not None:
            path += "?" + urlencode({"k": k})
        return self._json("GET", path)

    def best(self, uri: str) -> dict[str, Any]:
        return self._json("GET", self._entity_path("/best", uri))

    # ------------------------------------------------------------------
    # Write / admin endpoints
    # ------------------------------------------------------------------
    def apply_delta(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST a delta batch (see :mod:`repro.serve.json_codec`)."""
        return self._json("POST", "/delta", payload)

    def snapshot(self, path: str | None = None) -> dict[str, Any]:
        body = {"path": path} if path is not None else None
        return self._json("POST", "/snapshot", body)

    def reload(self, path: str | None = None) -> dict[str, Any]:
        body = {"path": path} if path is not None else None
        return self._json("POST", "/reload", body)

    def __repr__(self) -> str:
        return f"ServeClient({self.base_url!r})"
