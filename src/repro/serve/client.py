"""A minimal stdlib client for the resolution daemon.

Used by the isolation tests, the serving benchmark and the CI smoke
job; equally usable interactively::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8750")
    client.healthz()                      # {'status': 'ok', 'generation': 1}
    client.candidates("http://ex/e1", k=5)
    client.resolve({"uri": "urn:q:1", "pairs": [["name", {"lit": "bob"}]]})
    client.apply_delta({"ops": [
        {"op": "remove", "kb": "kb1", "uris": ["http://ex/e1"]},
    ]})
    client.snapshot()

Entity URIs are percent-quoted into the path (``quote(uri, safe="")``),
matching the daemon's routing.  Every failure mode raises
:class:`ServeClientError`: non-2xx responses carry the HTTP status and
the decoded ``error`` message, while connection-level failures — DNS,
refused connections, and read/connect timeouts — carry status ``0``
(no urllib or socket exception ever escapes).  Each request method
accepts a ``timeout=`` override for that one call; the constructor's
timeout is the default.
"""

from __future__ import annotations

import http.client
import json
from typing import Any
from urllib.error import HTTPError, URLError
from urllib.parse import quote, urlencode
from urllib.request import Request, urlopen


class ServeClientError(RuntimeError):
    """A non-2xx daemon response (or no response at all).

    ``status`` is the HTTP status code, or ``0`` when the failure
    happened below HTTP (unreachable daemon, timeout, torn response).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Typed wrappers over the daemon's endpoints, one method each."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Any | None = None,
        timeout: float | None = None,
    ) -> tuple[int, str, str]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        if timeout is None:
            timeout = self.timeout
        # Exception taxonomy, most to least specific: HTTPError is a
        # daemon answer (keep its status); URLError wraps most
        # connect-phase failures; but a timeout *mid-read* surfaces as a
        # bare TimeoutError/socket.timeout, a torn response as
        # http.client.HTTPException, and stray socket errors as OSError
        # (URLError's base class, so it must be caught after it).
        try:
            with urlopen(request, timeout=timeout) as response:
                return (
                    response.status,
                    response.read().decode("utf-8"),
                    response.headers.get("Content-Type", ""),
                )
        except HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except (json.JSONDecodeError, AttributeError):
                message = raw
            raise ServeClientError(error.code, message) from None
        except URLError as error:
            raise ServeClientError(0, f"daemon unreachable: {error.reason}")
        except TimeoutError as error:
            raise ServeClientError(
                0, f"request timed out after {timeout}s: {error}"
            ) from None
        except http.client.HTTPException as error:
            raise ServeClientError(
                0, f"malformed daemon response: {error!r}"
            ) from None
        except OSError as error:
            raise ServeClientError(
                0, f"connection failed: {error}"
            ) from None

    def _json(
        self,
        method: str,
        path: str,
        payload: Any | None = None,
        timeout: float | None = None,
    ) -> Any:
        _, body, _ = self._request(method, path, payload, timeout)
        return json.loads(body)

    @staticmethod
    def _entity_path(prefix: str, uri: str) -> str:
        return f"{prefix}/{quote(uri, safe='')}"

    # ------------------------------------------------------------------
    # Read endpoints
    # ------------------------------------------------------------------
    def healthz(self, timeout: float | None = None) -> dict[str, Any]:
        return self._json("GET", "/healthz", timeout=timeout)

    def stats(self, timeout: float | None = None) -> dict[str, Any]:
        return self._json("GET", "/stats", timeout=timeout)

    def metrics(self, timeout: float | None = None) -> str:
        """The raw Prometheus text exposition."""
        _, body, _ = self._request("GET", "/metrics", timeout=timeout)
        return body

    def match(self, uri: str, timeout: float | None = None) -> dict[str, Any]:
        return self._json(
            "GET", self._entity_path("/match", uri), timeout=timeout
        )

    def candidates(
        self, uri: str, k: int | None = None, timeout: float | None = None
    ) -> dict[str, Any]:
        path = self._entity_path("/candidates", uri)
        if k is not None:
            path += "?" + urlencode({"k": k})
        return self._json("GET", path, timeout=timeout)

    def best(self, uri: str, timeout: float | None = None) -> dict[str, Any]:
        return self._json(
            "GET", self._entity_path("/best", uri), timeout=timeout
        )

    def resolve(
        self,
        record: dict[str, Any],
        k: int | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Online-resolve one raw record (delta wire format: uri+pairs)."""
        body: dict[str, Any] = {"record": record}
        if k is not None:
            body["k"] = k
        return self._json("POST", "/resolve", body, timeout=timeout)

    def resolve_batch(
        self,
        records: list[dict[str, Any]],
        k: int | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Online-resolve a batch of records in one request."""
        body: dict[str, Any] = {"records": records}
        if k is not None:
            body["k"] = k
        return self._json("POST", "/resolve_batch", body, timeout=timeout)

    # ------------------------------------------------------------------
    # Write / admin endpoints
    # ------------------------------------------------------------------
    def apply_delta(
        self, payload: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """POST a delta batch (see :mod:`repro.serve.json_codec`)."""
        return self._json("POST", "/delta", payload, timeout=timeout)

    def snapshot(
        self, path: str | None = None, timeout: float | None = None
    ) -> dict[str, Any]:
        body = {"path": path} if path is not None else None
        return self._json("POST", "/snapshot", body, timeout=timeout)

    def reload(
        self, path: str | None = None, timeout: float | None = None
    ) -> dict[str, Any]:
        body = {"path": path} if path is not None else None
        return self._json("POST", "/reload", body, timeout=timeout)

    def __repr__(self) -> str:
        return f"ServeClient({self.base_url!r})"
