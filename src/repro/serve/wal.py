"""Write-ahead delta log: durable ``POST /delta`` replay (``repro-wal/1``).

The daemon's durability story before this module was "whatever the last
snapshot held": a SIGKILL lost every delta applied since.  The WAL
closes that window with the classic ordering — a validated operation
batch is fsync-appended *before* the matcher applies it, so after a
crash the log holds every acknowledged (and every in-flight) batch and
boot replays them against the snapshot deterministically.

File format — line-oriented, append-only, human-inspectable::

    {"schema": "repro-wal/1"}
    8f3a2c01\t{"expected_generation":2,"ops":[...],"type":"delta"}
    1b77e0d4\t{"generation":2,"matches_digest":"...","type":"commit"}

The first line is the header.  Each record line is the CRC-32 of the
payload bytes (8 hex digits), a tab, the compact sorted-key JSON
payload, a newline.  Two record types:

``delta``
    One validated op batch in the wire grammar of
    :mod:`repro.serve.json_codec`, plus the generation the writer
    expects the apply to produce.  Appended (flush + fsync) before the
    matcher mutates anything.
``commit``
    Appended after the new generation publishes; pins the generation's
    ``matches_digest`` so replay can *prove* it reconverged instead of
    assuming determinism.

Torn-tail tolerance: a crash mid-append leaves a final line without a
newline (or with a short payload failing its CRC).  Opening the log
drops and physically truncates such a tail — only the **last** record
may be damaged, because every earlier append returned only after its
fsync; damage anywhere else is real corruption and raises
:class:`WalError`.  A trailing ``delta`` without its ``commit`` is
replayed anyway: it was durably logged before the crash, and replaying
it is exactly the at-least-once semantics the digest check verifies.

Truncation (:meth:`WriteAheadLog.reset`) happens after a successful
snapshot — the snapshot now owns the state, so the log restarts empty
via an atomic header-file swap.

``REPRO_NO_FSYNC=1`` (see :mod:`repro.store.snapshot`) downgrades the
fsync barrier to a flush for benchmarking the fsync cost.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from ..store.snapshot import fsync_enabled, fsync_dir
from ..testing.failpoints import failpoint

#: The one WAL schema this build writes and accepts.
WAL_SCHEMA = "repro-wal/1"

#: Default log file name inside a ``--wal-dir``.
WAL_NAME = "delta.wal"


class WalError(RuntimeError):
    """The write-ahead log is unreadable or fails its integrity checks."""


def _encode_record(record: dict) -> bytes:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x}".encode("ascii") + b"\t" + payload + b"\n"


def _decode_line(line: bytes) -> dict:
    """Parse one complete record line; raises ``ValueError`` on damage."""
    crc_hex, separator, payload = line.partition(b"\t")
    if not separator or len(crc_hex) != 8:
        raise ValueError("record framing")
    if int(crc_hex, 16) != (zlib.crc32(payload) & 0xFFFFFFFF):
        raise ValueError("CRC mismatch")
    record = json.loads(payload)
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    return record


class WriteAheadLog:
    """One append-only delta log file (see module docstring).

    Opening an existing log validates the header, parses every record,
    tolerates (and truncates away) a torn final record, and exposes the
    survivors as :attr:`recovered` for the daemon to replay.  The file
    handle then stays open at the end for appends.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Records recovered from an existing file at open (replay input).
        self.recovered: list[dict] = []
        #: Torn-tail records dropped (and truncated) at open: 0 or 1.
        self.torn_dropped = 0
        if not self.path.exists():
            self._write_fresh(self.path)
        self._recover()
        self._handle = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        raw = self.path.read_bytes()
        newline = raw.find(b"\n")
        if newline < 0:
            raise WalError(f"{self.path}: missing WAL header")
        try:
            header = json.loads(raw[:newline])
        except json.JSONDecodeError as error:
            raise WalError(f"{self.path}: unreadable header: {error}")
        schema = header.get("schema") if isinstance(header, dict) else None
        if schema != WAL_SCHEMA:
            raise WalError(
                f"{self.path}: schema {schema!r} is not supported; this "
                f"build reads {WAL_SCHEMA!r}"
            )
        body = raw[newline + 1:]
        offset = newline + 1  # byte offset of the clean prefix's end
        lines = body.split(b"\n")
        torn_tail = lines[-1]  # b"" when the file ends with a newline
        complete = lines[:-1]
        for index, line in enumerate(complete):
            try:
                record = _decode_line(line)
            except (ValueError, json.JSONDecodeError) as error:
                if index == len(complete) - 1 and not torn_tail:
                    # A damaged *final* record is a torn append; an
                    # fsynced earlier record can never be damaged.
                    torn_tail = line
                    break
                raise WalError(
                    f"{self.path}: corrupt record "
                    f"{index + 1}/{len(complete)}: {error}"
                )
            self.recovered.append(record)
            offset += len(line) + 1
        if torn_tail:
            self.torn_dropped = 1
            os.truncate(self.path, offset)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (returns only after the barrier)."""
        failpoint("wal.append")
        self._handle.write(_encode_record(record))
        self._handle.flush()
        if fsync_enabled():
            os.fsync(self._handle.fileno())

    def log_delta(
        self, ops_payload: list[dict], expected_generation: int
    ) -> None:
        """Log one validated op batch before it is applied."""
        self.append(
            {
                "type": "delta",
                "ops": ops_payload,
                "expected_generation": expected_generation,
            }
        )

    def log_commit(self, generation: int, matches_digest: str) -> None:
        """Pin a published generation's digest after the apply."""
        self.append(
            {
                "type": "commit",
                "generation": generation,
                "matches_digest": matches_digest,
            }
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _write_fresh(self, target: Path) -> None:
        """Write a header-only log file durably at ``target``."""
        staging = target.parent / (target.name + ".tmp")
        with open(staging, "wb") as handle:
            handle.write(
                json.dumps({"schema": WAL_SCHEMA}).encode("utf-8") + b"\n"
            )
            handle.flush()
            if fsync_enabled():
                os.fsync(handle.fileno())
        os.replace(staging, target)
        fsync_dir(target.parent)

    def reset(self) -> None:
        """Truncate to an empty log (after a successful snapshot)."""
        self._handle.close()
        self._write_fresh(self.path)
        self.recovered = []
        self.torn_dropped = 0
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.path)!r}, "
            f"recovered={len(self.recovered)})"
        )
