"""Matching highly heterogeneous music KBs (the BBCmusic-DBpedia regime).

Run with::

    python examples/music_kbs.py [scale]

Generates the BBCmusic-DBpedia-like benchmark pair — a small clean KB of
musicians/bands/places against a noisy, schema-exploded one — then runs
MinoanER and reports per-heuristic contributions and evaluation scores.
This is the regime the paper motivates: value-only evidence is weak, so
neighbor evidence (H3) and reciprocity (H4) have to carry their weight.
"""

import sys

from repro import MinoanER, evaluate_matching, generate_benchmark
from repro.evaluation import render_records
from repro.kb import Tokenizer, dataset_statistics
from repro.pipeline import render_stage_list


def main(scale: float = 0.25) -> None:
    data = generate_benchmark("bbc_dbpedia", scale=scale)
    kb1, kb2 = data.kb1, data.kb2

    stats = dataset_statistics(kb1, kb2, len(data.ground_truth), Tokenizer())
    print("Dataset statistics (Table I style):")
    print(render_records([stats.kb1.as_row(), stats.kb2.as_row()]))
    print(f"ground-truth matches: {stats.matches}")
    print()
    print(
        f"KB2 has {len(kb2.attribute_names())} distinct attribute names vs "
        f"{len(kb1.attribute_names())} in KB1 — schema-based matching is "
        "hopeless here."
    )
    print()

    matcher = MinoanER()
    print(render_stage_list(matcher.graph))
    print()
    result = matcher.match(kb1, kb2)
    report = result.purging_report
    print(
        f"Block Purging: {report.blocks_before} -> {report.blocks_after} "
        f"blocks, comparisons cut by {100 * report.comparison_reduction:.1f}%"
    )
    print(f"Matches by heuristic: {result.by_heuristic()}")
    print(f"Discarded by reciprocity (H4): {len(result.discarded_by_h4)}")

    quality = evaluate_matching(result.pairs(), data.ground_truth)
    print(
        f"Precision {100 * quality.precision:.2f}  "
        f"Recall {100 * quality.recall:.2f}  "
        f"F1 {100 * quality.f1:.2f}"
    )
    print(f"Per-stage wall-clock: {result.timing_summary()}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
