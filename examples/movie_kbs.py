"""Matching token-poor, relation-rich movie KBs (the YAGO-IMDb regime).

Run with::

    python examples/movie_kbs.py [scale]

Generates the YAGO-IMDb-like pair — tiny descriptions, heavy name-token
reuse, namesake persons disambiguated only by the movies that point at
them — and contrasts MinoanER with the value-only BSL baseline.  The gap
between the two is the paper's headline result on this regime.
"""

import sys

from repro import MatchSession, evaluate_matching, generate_benchmark
from repro.evaluation import render_records, run_bsl


def main(scale: float = 0.25) -> None:
    data = generate_benchmark("yago_imdb", scale=scale)

    # A session caches blocking/index artifacts, so the no-H3 ablation
    # below only re-runs the matching stage.
    session = MatchSession(data.kb1, data.kb2)
    result = session.match()
    quality = evaluate_matching(result.pairs(), data.ground_truth)
    print(f"MinoanER by heuristic: {result.by_heuristic()}")
    print(
        "MinoanER:  "
        f"P {100 * quality.precision:.2f}  R {100 * quality.recall:.2f}  "
        f"F1 {100 * quality.f1:.2f}"
    )

    bsl = run_bsl(data, ngram_sizes=(1, 2), thresholds=(0.1, 0.2, 0.3, 0.4))
    print(
        f"BSL ({bsl.detail}):  P {bsl.precision:.2f}  R {bsl.recall:.2f}  "
        f"F1 {bsl.f1:.2f}"
    )
    print()

    # What happens without neighbor evidence?  Disable H3 and compare —
    # the session reuses every prepared index, so this is nearly free.
    no_h3 = session.match(h3=False)
    no_h3_quality = evaluate_matching(no_h3.pairs(), data.ground_truth)
    rows = [
        {
            "variant": "full MinoanER",
            "recall": round(100 * quality.recall, 2),
            "f1": round(100 * quality.f1, 2),
        },
        {
            "variant": "without H3 (no neighbors)",
            "recall": round(100 * no_h3_quality.recall, 2),
            "f1": round(100 * no_h3_quality.f1, 2),
        },
    ]
    print(render_records(rows, title="Neighbor evidence ablation"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
