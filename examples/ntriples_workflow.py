"""End-to-end workflow with RDF files: generate, export, reload, match.

Run with::

    python examples/ntriples_workflow.py [directory]

Demonstrates the file-based workflow a downstream user would follow with
their own RDF dumps: the restaurant-like benchmark pair is written as
N-Triples, read back (as any external KB pair would be), matched with
MinoanER, and the resulting links serialized as owl:sameAs triples.
"""

import sys
import tempfile
from pathlib import Path

from repro import MinoanER, evaluate_matching, generate_benchmark
from repro.kb import read_ntriples, write_ntriples

SAME_AS = "http://www.w3.org/2002/07/owl#sameAs"


def main(directory: str | None = None) -> None:
    workdir = Path(directory) if directory else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)

    data = generate_benchmark("restaurant", scale=0.5)
    path1 = workdir / "restaurants_left.nt"
    path2 = workdir / "restaurants_right.nt"
    write_ntriples(data.kb1, path1)
    write_ntriples(data.kb2, path2)
    print(f"wrote {path1} ({path1.stat().st_size} bytes)")
    print(f"wrote {path2} ({path2.stat().st_size} bytes)")

    kb1 = read_ntriples(path1, name="left")
    kb2 = read_ntriples(path2, name="right")
    print(f"reloaded: {len(kb1)} + {len(kb2)} entities")

    result = MinoanER().match(kb1, kb2)
    quality = evaluate_matching(result.pairs(), data.ground_truth)
    print(
        f"matched {len(result.matches)} pairs  "
        f"(P {100 * quality.precision:.1f} / R {100 * quality.recall:.1f})"
    )

    links = workdir / "links.nt"
    with open(links, "w", encoding="utf-8") as handle:
        for uri1, uri2 in sorted(result.pairs()):
            handle.write(f"<{uri1}> <{SAME_AS}> <{uri2}> .\n")
    print(f"wrote {links}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
