"""Quickstart: match two tiny hand-written KBs with MinoanER.

Run with::

    python examples/quickstart.py

Builds two four-entity knowledge bases about music venues and their
cities, with different attribute names on each side (schema-agnostic
matching needs no alignment), and prints the discovered matches with the
heuristic that produced each.
"""

from repro import EntityDescription, KnowledgeBase, MinoanER


def build_left() -> KnowledgeBase:
    kb = KnowledgeBase("VenueGuide")
    venue = EntityDescription("http://left.example.org/venue/1")
    venue.add_literal("name", "Blue Note Jazz Club")
    venue.add_literal("description", "legendary smoky jazz basement stage")
    venue.add_relation("locatedIn", "http://left.example.org/city/1")
    kb.add(venue)

    second = EntityDescription("http://left.example.org/venue/2")
    second.add_literal("name", "Village Vanguard")
    second.add_literal("description", "historic wedge shaped listening room")
    second.add_relation("locatedIn", "http://left.example.org/city/1")
    kb.add(second)

    city = EntityDescription("http://left.example.org/city/1")
    city.add_literal("name", "New York City")
    city.add_literal("nickname", "the big apple")
    kb.add(city)

    lonely = EntityDescription("http://left.example.org/venue/3")
    lonely.add_literal("name", "Preservation Hall")
    lonely.add_literal("description", "acoustic brass traditions nightly")
    kb.add(lonely)
    return kb


def build_right() -> KnowledgeBase:
    kb = KnowledgeBase("CityMusic")
    venue = EntityDescription("http://right.example.org/e/10")
    venue.add_literal("label", "Blue Note Jazz Club")
    venue.add_literal("blurb", "famous jazz basement in greenwich village")
    venue.add_relation("city", "http://right.example.org/e/30")
    kb.add(venue)

    second = EntityDescription("http://right.example.org/e/20")
    second.add_literal("label", "The Village Vanguard")
    second.add_literal("blurb", "wedge shaped room with historic recordings")
    second.add_relation("city", "http://right.example.org/e/30")
    kb.add(second)

    city = EntityDescription("http://right.example.org/e/30")
    city.add_literal("label", "new york city")
    city.add_literal("note", "big apple metropolis")
    kb.add(city)
    return kb


def main() -> None:
    kb1, kb2 = build_left(), build_right()
    result = MinoanER().match(kb1, kb2)

    print(f"Discovered name attributes: {result.name_attributes1} / "
          f"{result.name_attributes2}")
    print(f"Token blocks: {len(result.token_blocks)}, "
          f"name blocks: {len(result.name_blocks)}")
    print()
    print("Matches:")
    for match in result.matches:
        print(f"  [{match.heuristic}] {match.uri1}  <->  {match.uri2}")
    unmatched = set(kb1.uris()) - {m.uri1 for m in result.matches}
    print(f"Unmatched in {kb1.name}: {sorted(unmatched)}")

    # The pipeline is a composable stage graph: the builder swaps
    # heuristics (or whole stages) without touching the core.
    names_only = MinoanER.builder().with_heuristics("h1").build()
    print()
    print(f"H1-only matches: {sorted(names_only.match(kb1, kb2).pairs())}")


if __name__ == "__main__":
    main()
