"""Extending the pipeline: a custom heuristic and a custom stage.

Run with::

    python examples/custom_heuristic.py

MinoanER's pipeline is a composable stage graph (``repro.pipeline``):
blocking schemes and heuristics live in named registries, and user code
plugs new ones in without touching the core.  This example

1. registers an **H5 heuristic** that matches entities sharing a unique
   year token (a domain-specific signal H1-H4 treat as just another
   token),
2. adds a **report stage** that consumes the final matches artifact and
   publishes a per-heuristic summary, and
3. runs both through a :class:`~repro.pipeline.session.MatchSession`,
   showing that a second call re-uses every cached stage.
"""

import re

from repro import HEURISTICS, KnowledgeBase, MinoanER, Stage
from repro.core.heuristics import Match
from repro.pipeline import Heuristic

YEAR = re.compile(r"^(1[89]|20)\d\d$")


@HEURISTICS.register("h5_year")
class UniqueYearHeuristic(Heuristic):
    """Match entities that are the only ones carrying a given year."""

    name = "h5_year"

    @staticmethod
    def _years(kb):
        by_year = {}
        for entity in kb:
            for _, literal in entity.literal_pairs():
                for token in literal.split():
                    if YEAR.match(token):
                        by_year.setdefault(token, set()).add(entity.uri)
        return by_year

    def produce(self, ctx, registry, engine):
        years1 = self._years(ctx.kb1)
        years2 = self._years(ctx.kb2)
        matches = []
        for year in sorted(years1.keys() & years2.keys()):
            if len(years1[year]) == 1 and len(years2[year]) == 1:
                (uri1,), (uri2,) = years1[year], years2[year]
                if registry.is_free(uri1, uri2):
                    registry.mark(uri1, uri2)
                    matches.append(Match(uri1, uri2, "H5"))
        return matches


class SummaryStage(Stage):
    """A downstream stage consuming the ``matches`` artifact."""

    name = "summary"
    requires = ("matches",)
    provides = ("summary",)

    def run(self, ctx, engine):
        counts = {}
        for match in ctx.get("matches"):
            counts[match.heuristic] = counts.get(match.heuristic, 0) + 1
        ctx.put("summary", counts, producer=self.name)


def build_kbs():
    kb1 = KnowledgeBase("Films")
    a1 = kb1.new_entity("http://films.org/m1")
    a1.add_literal("title", "the grand escape")
    a1.add_literal("released", "1963")
    a2 = kb1.new_entity("http://films.org/m2")
    a2.add_literal("title", "midnight harbor")
    a2.add_literal("released", "1977")

    kb2 = KnowledgeBase("Archive")
    b1 = kb2.new_entity("http://archive.org/r1")
    b1.add_literal("label", "der grosse ausbruch")
    b1.add_literal("year", "1963")
    b2 = kb2.new_entity("http://archive.org/r2")
    b2.add_literal("label", "hafen um mitternacht")
    b2.add_literal("year", "1977")
    return kb1, kb2


def main() -> None:
    kb1, kb2 = build_kbs()

    # Translated titles share no tokens, so these tiny KBs carry no name
    # evidence — the composed sequence drops H1 and lets the registered
    # H5 claim matches on year evidence before the generic token
    # heuristics (the with_heuristics order is the execution order).
    builder = (
        MinoanER.builder()
        .with_heuristics("h5_year", "h2", "h3", "h4")
        .with_stage(SummaryStage())
    )
    session = builder.session(kb1, kb2)
    result = session.match()

    print("Matches:")
    for match in result.matches:
        print(f"  [{match.heuristic}] {match.uri1}  <->  {match.uri2}")
    print(f"Stage graph: {' -> '.join(builder.build_graph().names())}")
    print(f"Stage runs after 1st call: {dict(session.stage_runs)}")

    session.match()  # everything cached: no stage re-runs
    print(f"Stage runs after 2nd call: {dict(session.stage_runs)}")


if __name__ == "__main__":
    main()
