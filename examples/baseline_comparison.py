"""Compare MinoanER against all five baselines on one benchmark.

Run with::

    python examples/baseline_comparison.py [profile] [scale]

Profiles: restaurant, rexa_dblp, bbc_dbpedia, yago_imdb.  Prints a
Table III-style row set with precision/recall/F1 per method.  The
iterative baselines (SiGMa, RiMOM) receive the generator's relation
alignment — the domain knowledge MinoanER deliberately does without.
"""

import sys

from repro import MatchSession, generate_benchmark
from repro.evaluation import (
    render_records,
    run_bsl,
    run_linda,
    run_minoaner,
    run_paris,
    run_rimom,
    run_sigma,
)


def main(profile: str = "rexa_dblp", scale: float = 0.2) -> None:
    data = generate_benchmark(profile, scale=scale)
    print(
        f"{profile}: |E1|={len(data.kb1)} |E2|={len(data.kb2)} "
        f"matches={len(data.ground_truth)}"
    )

    # run_minoaner accepts a MatchSession: repeated calls (grid searches,
    # ablations) would reuse the cached blocking/index artifacts.
    session = MatchSession(data.kb1, data.kb2)
    rows = []
    for runner in (run_sigma, run_linda, run_rimom, run_paris):
        row = runner(data)
        rows.append(row.as_record())
        print(f"  done: {row.method}")
    minoaner = run_minoaner(data, session=session)
    rows.append(minoaner.as_record())
    print(f"  done: {minoaner.method}")
    bsl = run_bsl(data, ngram_sizes=(1, 2), thresholds=(0.1, 0.2, 0.3))
    rows.insert(4, bsl.as_record())
    print()
    print(render_records(rows, title=f"Method comparison on {profile}"))


if __name__ == "__main__":
    profile = sys.argv[1] if len(sys.argv) > 1 else "rexa_dblp"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    main(profile, scale)
